// The compiled HiPer-D analysis: one scenario, many mappings.
//
// The Section 3.2 derivation is mapping-dependent in only three ways: the
// multitasking factor scaling each computation time, WHICH compute row an
// application contributes (its assigned machine), and the per-path latency
// weights assembled from those rows. Everything else — the feature names,
// the throughput bounds 1/R(a_i), the communication features (which do not
// depend on the mapping at all), the latency limits, and the perturbation
// parameter — is fixed by the scenario.
//
// CompiledScenario performs all scenario-fixed work once:
//   * validates the scenario and the analysis options,
//   * precomputes the throughput bounds and every feature name,
//   * fully pre-solves the communication (Tn) radius reports, and
//   * records which compute/comm functions are zero or non-linear.
// analyze(mapping, workspace) then materializes only the mapping-dependent
// weight rows into a caller-owned workspace and runs the shared core kernel
// (core::evaluateAffineRadius), producing a RobustnessReport bit-identical
// to HiperdSystem(scenario, mapping).toAnalyzer(options).analyze().
//
// The all-affine fast path applies when every compute and comm function is
// linear and the solver is Auto or Analytic (the generated scenarios and the
// paper's Table 2 are all-linear). Otherwise analyze() transparently falls
// back to the legacy derivation, so results are identical either way.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/report.hpp"
#include "robust/hiperd/system.hpp"
#include "robust/scheduling/heuristics.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::hiperd {

/// Caller-owned scratch state for repeated per-mapping analysis. Reusing one
/// workspace keeps every buffer (report radii with their strings and
/// boundary points, machine counts, factors, the assembled weight row), so
/// steady-state re-analysis performs no heap allocation on the fast path.
class ScenarioWorkspace {
 public:
  ScenarioWorkspace() = default;

 private:
  friend class CompiledScenario;
  core::RobustnessReport report_;
  std::vector<std::size_t> counts_;  ///< apps per machine
  std::vector<double> factors_;      ///< multitask factor per app
  num::Vec row_;                     ///< assembled feature weights
};

/// Phase 1 of the HiPer-D analysis: everything derivable from the scenario
/// alone. Immutable once built; analyze() is const and reentrant, so one
/// compiled scenario serves many threads as long as each uses its own
/// workspace. The scenario must outlive this object.
class CompiledScenario {
 public:
  explicit CompiledScenario(const HiperdScenario& scenario,
                            core::AnalyzerOptions options = {});

  [[nodiscard]] const HiperdScenario& scenario() const noexcept {
    return *scenario_;
  }
  [[nodiscard]] const core::AnalyzerOptions& options() const noexcept {
    return options_;
  }
  /// The perturbation parameter (lambda, discrete) shared by every mapping.
  [[nodiscard]] const core::PerturbationParameter& parameter() const noexcept {
    return parameter_;
  }
  /// True when every load function is linear and the solver is analytic, so
  /// analyze() runs the allocation-free kernel path. Otherwise analyze()
  /// falls back to the legacy derivation (identical results, legacy cost).
  [[nodiscard]] bool fastPath() const noexcept { return fast_; }
  /// 1/R(a_i), the scenario-fixed throughput bound of `app`.
  [[nodiscard]] double throughputBound(std::size_t app) const;

  /// Phase 2: full robustness analysis of one mapping (Eq. 11, floored).
  /// Returns a reference to the workspace-owned report (valid until the next
  /// analyze through the same workspace). Bit-identical to
  /// HiperdSystem(scenario, mapping).toAnalyzer(options).analyze().
  const core::RobustnessReport& analyze(const sched::Mapping& mapping,
                                        ScenarioWorkspace& workspace) const;

  /// Convenience: analyze with a throwaway workspace.
  [[nodiscard]] core::RobustnessReport analyze(
      const sched::Mapping& mapping) const;

  /// Analyzes every mapping with a static block partition over
  /// util::thread_pool (threads = 0 means defaultThreadCount()); each block
  /// reuses a dedicated workspace and results are bit-identical for every
  /// thread count.
  [[nodiscard]] std::vector<core::RobustnessReport> analyzeMappings(
      std::span<const sched::Mapping> mappings, std::size_t threads = 0) const;

  /// Metric-only lane: rho (Eq. 11, floored) and its argmin slot without
  /// materializing per-feature reports. Dots and dual norms of the
  /// scenario-fixed parts are precomputed at compile time and combined per
  /// mapping with the blocked kernels (robust/numeric/simd.hpp); the Tn
  /// lane's contribution collapses to one precomputed (min, argmin) pair.
  /// The result is within 1e-12 relative of analyze().metric, with the same
  /// bindingFeature, and deterministic across runs and dispatch targets.
  ///
  /// With `prune` (the default), latency rows whose triangle-inequality
  /// lower bound (nearest-level gap over the sum of part dual norms)
  /// provably exceeds the incumbent are skipped without ever assembling
  /// the row; pruning never changes the returned bits (`prune = false`
  /// pins that equality in tests). Falls back to the full analyze() when
  /// !fastPath().
  [[nodiscard]] core::MetricResult analyzeMetric(const sched::Mapping& mapping,
                                                 ScenarioWorkspace& workspace,
                                                 bool prune = true) const;

  /// Convenience: metric lane with a throwaway workspace.
  [[nodiscard]] core::MetricResult analyzeMetric(
      const sched::Mapping& mapping) const;

 private:
  [[nodiscard]] const num::Vec& computeCoeffs(std::size_t app,
                                              std::size_t machine) const;

  const HiperdScenario* scenario_ = nullptr;
  core::AnalyzerOptions options_;
  core::PerturbationParameter parameter_;
  bool fast_ = false;
  std::size_t sensors_ = 0;
  std::vector<double> throughputBound_;  ///< per app, 1/R(a_i)

  /// Computation (Tc) lane: applications with a finite throughput bound, in
  /// ascending order, with their interned feature names and a per-(app,
  /// machine) zero flag (a zero compute function contributes no feature).
  std::vector<std::size_t> tcApps_;
  std::vector<std::string> tcNames_;   ///< parallel to tcApps_
  std::vector<char> computeZero_;      ///< [app * machines + machine]
  std::vector<char> commZero_;         ///< [edge id]

  /// Communication (Tn) lane: fully mapping-independent, so the complete
  /// radius reports are pre-solved at compile time and copied per mapping.
  std::vector<core::RadiusReport> tnReports_;

  /// Latency (L) lane: interned names, one per path.
  std::vector<std::string> latencyNames_;

  /// Metric-lane precompute (fast path only): per-(app, machine) compute
  /// dots against lambdaOrig and dual norms, per-edge comm dots and duals,
  /// the Tn lane's pre-reduced (min, earliest argmin), and whether the
  /// latency triangle-inequality prune is sound (all coefficients and
  /// origin loads non-negative, so no cancellation: a zero part-dual sum
  /// proves the assembled row is zero, and the decomposed dot's rounding
  /// is bounded by the magnitude sum).
  std::vector<double> computeDot_;   ///< [app * machines + machine]
  std::vector<double> computeDual_;  ///< [app * machines + machine]
  std::vector<double> commDot_;      ///< [edge id]
  std::vector<double> commDual_;     ///< [edge id]
  double tnMinRadius_ = std::numeric_limits<double>::infinity();
  std::size_t tnArgmin_ = 0;
  bool latencyPruneSafe_ = false;
};

/// Mapping objective for the iterative optimizers (annealMapping and the
/// shape-generic localSearch / geneticAlgorithm overloads): the negated
/// analyzeMetric metric, so minimizing it maximizes HiPer-D robustness.
/// The returned closure owns a reusable workspace shared by its copies; use
/// it from one thread at a time. `compiled` must outlive the closure.
[[nodiscard]] sched::MappingObjective robustnessObjective(
    const CompiledScenario& compiled);

}  // namespace robust::hiperd
