// The compiled HiPer-D analysis: one scenario, many mappings.
//
// The Section 3.2 derivation is mapping-dependent in only three ways: the
// multitasking factor scaling each computation time, WHICH compute row an
// application contributes (its assigned machine), and the per-path latency
// weights assembled from those rows. Everything else — the feature names,
// the throughput bounds 1/R(a_i), the communication features (which do not
// depend on the mapping at all), the latency limits, and the perturbation
// parameter — is fixed by the scenario.
//
// CompiledScenario performs all scenario-fixed work once:
//   * validates the scenario and the analysis options,
//   * precomputes the throughput bounds and every feature name,
//   * fully pre-solves the communication (Tn) radius reports, and
//   * records which compute/comm functions are zero or non-linear.
// analyze(mapping, workspace) then materializes only the mapping-dependent
// weight rows into a caller-owned workspace and runs the shared core kernel
// (core::evaluateAffineRadius), producing a RobustnessReport bit-identical
// to HiperdSystem(scenario, mapping).toAnalyzer(options).analyze().
//
// The all-affine fast path applies when every compute and comm function is
// linear and the solver is Auto or Analytic (the generated scenarios and the
// paper's Table 2 are all-linear). Otherwise analyze() transparently falls
// back to the legacy derivation, so results are identical either way.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/core/report.hpp"
#include "robust/hiperd/system.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::hiperd {

/// Caller-owned scratch state for repeated per-mapping analysis. Reusing one
/// workspace keeps every buffer (report radii with their strings and
/// boundary points, machine counts, factors, the assembled weight row), so
/// steady-state re-analysis performs no heap allocation on the fast path.
class ScenarioWorkspace {
 public:
  ScenarioWorkspace() = default;

 private:
  friend class CompiledScenario;
  core::RobustnessReport report_;
  std::vector<std::size_t> counts_;  ///< apps per machine
  std::vector<double> factors_;      ///< multitask factor per app
  num::Vec row_;                     ///< assembled feature weights
};

/// Phase 1 of the HiPer-D analysis: everything derivable from the scenario
/// alone. Immutable once built; analyze() is const and reentrant, so one
/// compiled scenario serves many threads as long as each uses its own
/// workspace. The scenario must outlive this object.
class CompiledScenario {
 public:
  explicit CompiledScenario(const HiperdScenario& scenario,
                            core::AnalyzerOptions options = {});

  [[nodiscard]] const HiperdScenario& scenario() const noexcept {
    return *scenario_;
  }
  [[nodiscard]] const core::AnalyzerOptions& options() const noexcept {
    return options_;
  }
  /// The perturbation parameter (lambda, discrete) shared by every mapping.
  [[nodiscard]] const core::PerturbationParameter& parameter() const noexcept {
    return parameter_;
  }
  /// True when every load function is linear and the solver is analytic, so
  /// analyze() runs the allocation-free kernel path. Otherwise analyze()
  /// falls back to the legacy derivation (identical results, legacy cost).
  [[nodiscard]] bool fastPath() const noexcept { return fast_; }
  /// 1/R(a_i), the scenario-fixed throughput bound of `app`.
  [[nodiscard]] double throughputBound(std::size_t app) const;

  /// Phase 2: full robustness analysis of one mapping (Eq. 11, floored).
  /// Returns a reference to the workspace-owned report (valid until the next
  /// analyze through the same workspace). Bit-identical to
  /// HiperdSystem(scenario, mapping).toAnalyzer(options).analyze().
  const core::RobustnessReport& analyze(const sched::Mapping& mapping,
                                        ScenarioWorkspace& workspace) const;

  /// Convenience: analyze with a throwaway workspace.
  [[nodiscard]] core::RobustnessReport analyze(
      const sched::Mapping& mapping) const;

  /// Analyzes every mapping with a static block partition over
  /// util::thread_pool (threads = 0 means defaultThreadCount()); each block
  /// reuses a dedicated workspace and results are bit-identical for every
  /// thread count.
  [[nodiscard]] std::vector<core::RobustnessReport> analyzeMappings(
      std::span<const sched::Mapping> mappings, std::size_t threads = 0) const;

 private:
  [[nodiscard]] const num::Vec& computeCoeffs(std::size_t app,
                                              std::size_t machine) const;

  const HiperdScenario* scenario_ = nullptr;
  core::AnalyzerOptions options_;
  core::PerturbationParameter parameter_;
  bool fast_ = false;
  std::size_t sensors_ = 0;
  std::vector<double> throughputBound_;  ///< per app, 1/R(a_i)

  /// Computation (Tc) lane: applications with a finite throughput bound, in
  /// ascending order, with their interned feature names and a per-(app,
  /// machine) zero flag (a zero compute function contributes no feature).
  std::vector<std::size_t> tcApps_;
  std::vector<std::string> tcNames_;   ///< parallel to tcApps_
  std::vector<char> computeZero_;      ///< [app * machines + machine]
  std::vector<char> commZero_;         ///< [edge id]

  /// Communication (Tn) lane: fully mapping-independent, so the complete
  /// radius reports are pre-solved at compile time and copied per mapping.
  std::vector<core::RadiusReport> tnReports_;

  /// Latency (L) lane: interned names, one per path.
  std::vector<std::string> latencyNames_;
};

}  // namespace robust::hiperd
