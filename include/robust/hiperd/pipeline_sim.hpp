// Discrete-event pipeline simulation of HiPer-D paths: the empirical
// counterpart of the Section 3.2 constraints.
//
// Each path is simulated as a tandem queue: the driving sensor emits data
// sets at its period 1/R, every application in the chain is a FIFO server
// with deterministic service time T_i^c(lambda) (the multitasking factor
// already folds machine sharing into the service time — paths are simulated
// independently, the model's own approximation), and transfers add the
// fixed delays T_ip^n(lambda).
//
// The simulation makes the two QoS constraints *observable*:
//   * throughput (Eq. 10a): the tandem queue is stable iff every service
//     time is at most the emission period — exactly T_i^c <= 1/R(a_i). When
//     violated, per-data-set latency grows linearly at rate
//     (max service time - period).
//   * latency (Eq. 10c): in the stable regime the steady-state end-to-end
//     latency equals the analytic L_k(lambda) of Eq. 8.
#pragma once

#include <cstddef>
#include <vector>

#include "robust/hiperd/system.hpp"

namespace robust::hiperd {

/// Simulation outcome for one path.
struct PathSimResult {
  std::size_t path = 0;             ///< path index
  std::vector<double> latencies;    ///< per data set, in emission order
  bool stable = true;               ///< no service time exceeds the period
  double steadyLatency = 0.0;       ///< latency of the last data set
  double growthRate = 0.0;          ///< latency increase per data set
                                    ///< (0 when stable)
  bool latencyViolated = false;     ///< steady latency exceeds L_k^max
  bool throughputViolated = false;  ///< some T_i^c(lambda) > 1/R
};

/// Options for the pipeline simulation.
struct PipelineSimOptions {
  std::size_t dataSets = 200;  ///< emissions per driving sensor
};

/// Simulates every path of the bound system at sensor loads `lambda`.
[[nodiscard]] std::vector<PathSimResult> simulatePaths(
    const HiperdSystem& system, std::span<const double> lambda,
    const PipelineSimOptions& options = {});

}  // namespace robust::hiperd
