// Random HiPer-D scenario generator, parameterized to the Section 4.3
// experiment family (the authors' exact DAG was never published; this
// generator synthesizes instances with the same aggregate parameters —
// see DESIGN.md, "Substitutions").
//
// Published parameters preserved: 20 applications, 5 machines, 3 sensors
// (rates 4e-5, 3e-5, 8e-6), 3 actuators, 19 paths, lambda_orig =
// (962, 380, 240), b_ijz ~ Gamma(mean 10, task het 0.7, machine het 0.7)
// with b_ijz = 0 when sensor z cannot reach application a_i, latency limits
// uniform with a +/-25% spread, zero communication times.
//
// Because the paper's absolute unit system is not reconstructible (its
// published coefficients and rates are mutually inconsistent at face value),
// the generator *calibrates*: coefficients are scaled so that a reference
// (round-robin) mapping sees a target peak throughput utilization, and
// latency limits are centered so that nominal path latencies sit at a target
// utilization, preserving the paper's relative spread. This reproduces the
// slack range (~0.1-0.7) and robustness magnitudes (hundreds of objects per
// data set) of Fig. 4 / Table 2.
#pragma once

#include <cstdint>

#include "robust/hiperd/system.hpp"

namespace robust::hiperd {

/// Generator parameters; defaults reproduce the Section 4.3 family.
struct ScenarioOptions {
  std::size_t applications = 20;
  std::size_t machines = 5;
  std::vector<double> sensorRates = {4e-5, 3e-5, 8e-6};
  std::vector<double> lambdaOrig = {962.0, 380.0, 240.0};
  std::size_t actuators = 3;
  std::size_t targetPaths = 19;       ///< retry DAGs until exact (see below)
  int maxDagAttempts = 4000;          ///< attempts before taking the closest
  std::size_t layers = 4;             ///< depth of the layered DAG
  double extraEdgeProbability = 0.12; ///< merge/branch edges beyond the tree
  double coeffMean = 10.0;            ///< b_ijz Gamma mean (pre-calibration)
  double taskHeterogeneity = 0.7;
  double machineHeterogeneity = 0.7;
  double latencySpread = 0.25;        ///< limits uniform in [1-s, 1+s]*center
  /// Calibration targets are stated for the BALANCED round-robin reference
  /// mapping; random mappings concentrate applications (the 1.3 n(m_j)
  /// multitasking factor grows superlinearly), so their utilizations run
  /// 2-3x higher. These defaults put the random-mapping population in the
  /// paper's Fig. 4 slack range (~0.1 to 0.7, mostly feasible).
  double targetThroughputUtil = 0.18; ///< peak Tc/(1/R) at the reference
  double targetLatencyUtil = 0.20;    ///< nominal L_k/L_k^max
  double commCoeffMean = 0.0;         ///< 0 = paper's zero communication times
};

/// Generated scenario plus generation diagnostics.
struct GeneratedScenario {
  HiperdScenario scenario;
  std::size_t dagAttempts = 0;   ///< DAG draws consumed
  bool exactPathCount = false;   ///< paths() == targetPaths achieved
  double coefficientScale = 1.0; ///< calibration factor applied to b_ijz
};

/// Generates a scenario; deterministic in (options, seed).
[[nodiscard]] GeneratedScenario generateScenario(const ScenarioOptions& options,
                                                 std::uint64_t seed);

}  // namespace robust::hiperd
