// The Section 3.2 derivation: QoS robustness of a HiPer-D mapping against
// sensor-load increases.
//
// Performance features (Eq. 9): per-application computation times T_i^c,
// per-transfer communication times T_ip^n (throughput constraints, bound
// 1/R(a_i)) and per-path end-to-end latencies L_k (bound L_k^max).
// Perturbation parameter: the sensor-load vector lambda (discrete — the
// metric is floored, Section 3.2's "objects per data set" rule).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "robust/core/analyzer.hpp"
#include "robust/hiperd/graph.hpp"
#include "robust/hiperd/load_function.hpp"
#include "robust/scheduling/mapping.hpp"

namespace robust::hiperd {

class CompiledScenario;

/// A complete problem instance: the DAG, machines, loads, limits, and
/// load-dependent time functions. Mappings vary; the scenario is fixed.
struct HiperdScenario {
  SystemGraph graph;                 ///< finalized DAG
  std::size_t machines = 0;          ///< |M|
  num::Vec lambdaOrig;               ///< assumed sensor loads (lambda_orig)
  std::vector<double> latencyLimits; ///< L_k^max, one per graph.paths() entry
  /// Inner computation complexity per application and machine (the
  /// parenthesized part of Table 2; multitasking factor applied on top).
  std::vector<std::vector<LoadFunction>> compute;  ///< [app][machine]
  /// Communication time per edge (sensor edges carry no cost in the model
  /// but slots exist for uniform indexing).
  std::vector<LoadFunction> comm;                  ///< [edge id]

  /// Compiles the mapping-independent part of the Section 3.2 derivation for
  /// repeated per-mapping analysis (robust/hiperd/compiled_scenario.hpp).
  /// The scenario must outlive the returned object.
  [[nodiscard]] CompiledScenario compile(
      core::AnalyzerOptions options = {}) const;
};

/// Validates cross-field consistency of a scenario (dimensions, counts).
void validateScenario(const HiperdScenario& scenario);

/// One QoS constraint's identity, for reporting.
enum class ConstraintKind { Computation, Communication, Latency };

/// A QoS constraint evaluated at lambda_orig (used by the slack metric and
/// the experiment tables).
struct ConstraintStatus {
  ConstraintKind kind = ConstraintKind::Computation;
  std::string name;       ///< e.g. "Tc(a_3)", "Tn(a_3->a_7)", "L_4"
  double value = 0.0;     ///< attribute value at lambda_orig
  double limit = 0.0;     ///< maximum allowed value
  /// Fractional utilization value/limit; percentage slack is 1 - fraction.
  /// A positive value against a non-positive limit is infeasible at any
  /// scale and reports +inf (so slack() cannot mask a violated zero-limit
  /// constraint as fully slack).
  [[nodiscard]] double fraction() const {
    if (limit > 0.0) {
      return value / limit;
    }
    return value > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
};

/// Binds a scenario and a mapping; evaluates QoS, slack (Section 4.3) and
/// the robustness metric (Eq. 10a-c, Eq. 11).
class HiperdSystem {
 public:
  /// `mapping` assigns every application of the scenario's graph to one of
  /// the scenario's machines. The scenario must outlive this object.
  HiperdSystem(const HiperdScenario& scenario, sched::Mapping mapping);

  [[nodiscard]] const HiperdScenario& scenario() const noexcept {
    return scenario_;
  }
  [[nodiscard]] const sched::Mapping& mapping() const noexcept {
    return mapping_;
  }

  /// Multitasking factor of the machine hosting `app` under this mapping.
  [[nodiscard]] double factorOf(std::size_t app) const;

  /// Computation time T_i^c(lambda) of `app` on its assigned machine.
  [[nodiscard]] double computationTime(std::size_t app,
                                       std::span<const double> lambda) const;

  /// Communication time T_ip^n(lambda) of edge `edgeId`.
  [[nodiscard]] double communicationTime(std::size_t edgeId,
                                         std::span<const double> lambda) const;

  /// End-to-end latency L_k(lambda) of path `k`: computation times of every
  /// application in the path plus communication times of every traversed
  /// edge, including the sensor and terminal transfers (Eq. 8, with the
  /// "including any sensor or actuator communications" reading).
  [[nodiscard]] double latency(std::size_t k,
                               std::span<const double> lambda) const;

  /// 1/R(a_i): the throughput bound of `app` — the reciprocal of the highest
  /// output rate among the driving sensors of the paths containing the app
  /// (the tightest constraint when an application lies on several paths).
  [[nodiscard]] double throughputBound(std::size_t app) const;

  /// Every QoS constraint evaluated at lambda_orig.
  [[nodiscard]] std::vector<ConstraintStatus> constraints() const;

  /// System-wide percentage slack of Section 4.3: the minimum over all QoS
  /// constraints of (1 - fractional value).
  [[nodiscard]] double slack() const;

  /// Builds the FePIA analyzer for this mapping: one feature per non-trivial
  /// computation / communication / latency constraint, perturbation lambda
  /// (discrete). Features whose impact does not depend on lambda carry no
  /// boundary and are omitted.
  [[nodiscard]] core::RobustnessAnalyzer toAnalyzer(
      core::AnalyzerOptions options = {}) const;

  /// Full robustness analysis (Eq. 11, floored): convenience wrapper around
  /// toAnalyzer().analyze().
  [[nodiscard]] core::RobustnessReport analyze(
      core::AnalyzerOptions options = {}) const;

 private:
  const HiperdScenario& scenario_;
  sched::Mapping mapping_;
  std::vector<double> factors_;          ///< per app
  std::vector<double> throughputBound_;  ///< per app, 1/R(a_i)
};

}  // namespace robust::hiperd
