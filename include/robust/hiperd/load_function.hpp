// Load-dependent time functions T(lambda) for the HiPer-D model.
//
// Computation and communication times are functions of the sensor-load
// vector lambda (step 3 of the FePIA derivation in Section 3.2). The
// experiments use linear functions sum_z b_z * lambda_z; the formulation
// admits any convex complexity function (x^p, e^px, x log x, ...), which the
// `general` variant carries as an opaque callable for the iterative solvers.
#pragma once

#include <string>

#include "robust/core/impact.hpp"
#include "robust/numeric/optimize.hpp"
#include "robust/numeric/vector_ops.hpp"

namespace robust::hiperd {

/// A non-negative time function of the sensor load vector.
class LoadFunction {
 public:
  /// The identically-zero function over `sensors` loads (unconstrained
  /// feature; the Section 4.3 experiments zero all communication times).
  [[nodiscard]] static LoadFunction zero(std::size_t sensors);

  /// Linear function sum_z coeffs[z] * lambda_z.
  [[nodiscard]] static LoadFunction linear(num::Vec coeffs);

  /// General (ideally convex) function with optional analytic gradient.
  [[nodiscard]] static LoadFunction general(num::ScalarField f,
                                            num::GradientField gradient = {});

  /// Value at `lambda`.
  [[nodiscard]] double evaluate(std::span<const double> lambda) const;

  [[nodiscard]] bool isLinear() const noexcept { return linear_; }

  /// True when the function is linear with all-zero coefficients (carries no
  /// constraint: its boundary is unreachable).
  [[nodiscard]] bool isZero() const;

  /// Linear coefficients; requires isLinear().
  [[nodiscard]] const num::Vec& coeffs() const;

  /// The function scaled by `factor` (the multitasking factor), packaged as
  /// a core impact function: affine when linear, callable otherwise.
  [[nodiscard]] core::ImpactFunction impact(double factor) const;

  /// Human-readable form of the inner complexity function, e.g.
  /// "3*l1 + 1*l3" (Table 2's parenthesized part). General functions render
  /// as "<general>".
  [[nodiscard]] std::string describe(int precision = 4) const;

 private:
  LoadFunction() = default;

  bool linear_ = false;
  num::Vec coeffs_;
  num::ScalarField fn_;
  num::GradientField gradient_;
};

/// The multitasking factor of Section 4.3's computation-time model: a
/// machine running n applications round-robin slows each by 1.3 n (n >= 2);
/// a dedicated machine (n <= 1) runs at full speed.
[[nodiscard]] double multitaskFactor(std::size_t appsOnMachine);

}  // namespace robust::hiperd
