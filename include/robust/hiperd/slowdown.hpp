// A third FePIA derivation (ours, following the paper's Section 2 recipe):
// robustness of a HiPer-D mapping against MACHINE SLOWDOWNS at fixed sensor
// loads.
//
// Step 1 — features: the same QoS set as Section 3.2 (per-application
//   computation times against throughput bounds, per-path latencies against
//   their limits). Communication times do not depend on machine speed in
//   this model and contribute constants.
// Step 2 — perturbation parameter: the slowdown vector s in R^{|M|}; s_j is
//   the factor by which machine m_j currently runs slower than assumed
//   (thermal throttling, background load, degraded hardware). Operating
//   point: s_orig = (1, ..., 1).
// Step 3 — impact: T_i^c(s) = s_{m(i)} * T_i^c(lambda_orig) — affine in s;
//   L_k(s) = sum_j s_j * (computation time of P_k's applications on m_j)
//   + (constant communication time) — affine in s.
// Step 4 — analysis: point-to-hyperplane radii; rho is the largest
//   Euclidean slowdown displacement (in any combination of machines) that
//   violates no QoS constraint.
//
// Together with the sensor-load metric of Section 3.2 this demonstrates the
// multi-parameter extension the paper defers to ref [1]: analyze each
// parameter separately and combine with core::combinedRobustness (after
// normalizing to comparable units if desired).
#pragma once

#include "robust/hiperd/system.hpp"

namespace robust::hiperd {

/// The machine-slowdown FePIA derivation of the given bound system
/// (scenario + mapping) as a ProblemSpec. The perturbation parameter is
/// continuous with origin (1, ..., 1); features whose value does not depend
/// on any machine speed (e.g. pure-communication paths) are omitted.
[[nodiscard]] core::ProblemSpec slowdownSpec(
    const HiperdSystem& system, core::AnalyzerOptions options = {});

/// Builds the FePIA analyzer for the machine-slowdown derivation (the
/// compiled form of slowdownSpec behind the legacy adapter API).
[[nodiscard]] core::RobustnessAnalyzer slowdownAnalyzer(
    const HiperdSystem& system, core::AnalyzerOptions options = {});

}  // namespace robust::hiperd
