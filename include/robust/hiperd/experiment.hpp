// The Section 4.3 experiment driver: evaluate N random mappings of a
// generated HiPer-D scenario for slack and robustness (the data behind
// Fig. 4 and Table 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/hiperd/generator.hpp"

namespace robust::hiperd {

/// One evaluated mapping (one point of Fig. 4).
struct Fig4Row {
  double slack = 0.0;        ///< system-wide percentage slack (Section 4.3)
  double robustness = 0.0;   ///< rho (Eq. 11), floored, objects per data set
  std::string bindingFeature;///< constraint attaining the metric
  num::Vec lambdaStar;       ///< critical sensor loads at the boundary
};

/// Parameters; defaults are the paper's (1000 mappings on a 20-application,
/// 5-machine, 3-sensor, 19-path scenario).
struct Fig4Options {
  ScenarioOptions scenario;
  std::size_t mappings = 1000;
  std::uint64_t seed = 2003;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Experiment output: the generated scenario (for Table-2-style reporting),
/// the mappings, and one row per mapping, index-aligned.
struct Fig4Result {
  GeneratedScenario generated;
  std::vector<sched::Mapping> mappings;
  std::vector<Fig4Row> rows;
};

/// Runs the experiment; deterministic in (options, seed) regardless of the
/// thread count.
[[nodiscard]] Fig4Result runFig4(const Fig4Options& options);

/// Finds the Table 2 pair: among index pairs whose slack values differ by at
/// most `slackTolerance` and whose metrics are at least `minRobustness`
/// (excluding the near-violation corner, where tiny metrics make ratios
/// meaningless), the pair with the largest robustness ratio (max / min).
/// Returns {indexLow, indexHigh} ordered so the first has the smaller
/// robustness; throws if no eligible pair exists.
[[nodiscard]] std::pair<std::size_t, std::size_t> findTable2Pair(
    const std::vector<Fig4Row>& rows, double slackTolerance = 0.005,
    double minRobustness = 10.0);

}  // namespace robust::hiperd
