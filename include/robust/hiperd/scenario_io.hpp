// Text persistence for HiPer-D scenarios, so generated instances (the DAG,
// rates, loads, limits, and coefficient tensors behind a published figure)
// can be archived and re-analyzed later, byte-for-byte.
//
// Only linear load functions serialize (opaque callables cannot); values
// are written with %.17g so doubles round-trip exactly. Format (line
// oriented, whitespace separated):
//
//   hiperd-scenario v1
//   sensors <S>            followed by S lines: <name> <rate>
//   applications <A>       followed by A lines: <name>
//   actuators <T>          followed by T lines: <name>
//   edges <E>              followed by E lines: <fromKind> <fromIndex>
//                          <toKind> <toIndex> <trigger 0|1>
//                          (kinds: s = sensor, a = application, t = actuator)
//   machines <M>
//   lambda <l_1> ... <l_S>
//   latency_limits <P>     followed by P limits in path-enumeration order
//   compute                followed by A*M lines: <app> <machine> <S coeffs>
//   comm                   followed by E lines: <edge> <S coeffs>
//
// Loading is a trust boundary: the loader tracks line/column provenance
// for every token and rejects malformed input with a structured
// util::ParseError ("scenario:4:8: sensor rate 'nan' is not finite").
// Structural invariants — DAG acyclicity, sensor fan-out, count
// cross-checks — are enforced at load time; value domains (finite rates,
// non-negative loads and coefficients) follow the core::InputPolicy.
#pragma once

#include <iosfwd>
#include <string_view>

#include "robust/core/input_policy.hpp"
#include "robust/hiperd/system.hpp"

namespace robust::hiperd {

/// Writes `scenario` to `os`. Throws InvalidArgumentError when any load
/// function is not linear (opaque callables cannot be persisted).
void saveScenario(const HiperdScenario& scenario, std::ostream& os);

/// Parses a scenario from `is`, finalizes the graph, validates everything
/// (including that the stored latency-limit count matches the re-enumerated
/// path count), and returns it. Throws util::ParseError (an
/// InvalidArgumentError) on malformed or inconsistent input, with `source`
/// naming the input and line/column locating the offending token.
[[nodiscard]] HiperdScenario loadScenario(std::istream& is,
                                          std::string_view source = "scenario",
                                          const core::InputPolicy& policy = {});

}  // namespace robust::hiperd
