// Online drift lane: track rho under streaming perturbation-origin updates
// without re-running the analysis.
//
// Long-running systems watch their assumed operating point drift (measured
// execution times creep, sensor loads trend). Re-compiling or even
// re-evaluating the full metric per update is O(rows x dim); but a
// single-component origin change dv only moves each affine row's dot by
// w[row][k] * dv, so the tracker maintains the per-row origin dots
// incrementally — O(rows) per update — and re-minimizes rho over the rows'
// closed-form radii, also O(rows). No CompiledProblem evaluation runs on
// the update path (pinned by the core.evaluations counter in tests).
//
// The tracker also relates the drifted operating point back to the anchor
// (compiled) origin: the violating region is fixed and rho is its distance
// from the operating point, so translating the origin by a displacement of
// norm D moves rho by at most D (distance to a fixed set is 1-Lipschitz
// under the same norm). rhoLowerBound() / rhoUpperBound() expose that
// bracket — the invariant rebase() and the tests pin around the exactly
// maintained rho. Every per-sample critical radius of a degradation curve
// at the drifted origin is >= rho (Hoelder), so rho() is also a running
// floor under the whole drifted curve without recomputing it. When rho
// crosses below a caller-chosen threshold the status says so, letting
// callers deterministically re-trigger a mapping search (see
// examples/drift_reallocation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "robust/core/compiled.hpp"
#include "robust/curve/curve.hpp"

namespace robust::curve {

/// Outcome of one streamed update.
struct DriftStatus {
  double rho = 0.0;               ///< the metric at the drifted origin
  std::size_t bindingFeature = 0; ///< argmin feature index
  bool crossedBelow = false;      ///< THIS update moved rho from
                                  ///< >= threshold to < threshold
  std::uint64_t updates = 0;      ///< total updates applied so far
};

/// Incremental rho maintenance over an affine kernel-lane problem.
/// Requires metricKernelLane(), a single continuous subspace, no callable
/// features, and no feasibility constraints (throws InvalidArgumentError
/// otherwise — those lanes have no per-row closed form to maintain).
class DriftTracker {
 public:
  DriftTracker(const core::CompiledProblem& problem, double threshold);

  /// Applies one origin-component update and returns the refreshed
  /// status. O(rows) — never evaluates the compiled problem.
  DriftStatus applyUpdate(std::size_t component, double newValue);

  /// Recomputes the row dots exactly with the blocked kernels, flushing
  /// the rounding accumulated by incremental +='s. Call sparingly (e.g.
  /// every ~1e6 updates); the anchor origin is NOT moved.
  void rebase();

  [[nodiscard]] double rho() const noexcept { return rho_; }
  [[nodiscard]] std::size_t bindingFeature() const noexcept {
    return binding_;
  }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }

  /// The metric at the anchor origin (computed once at construction).
  [[nodiscard]] double anchorRho() const noexcept { return anchorRho_; }

  /// The drifted operating point.
  [[nodiscard]] std::span<const double> origin() const noexcept {
    return {origin_.data(), origin_.size()};
  }

  /// Displacement norm between the drifted origin and the anchor (the
  /// compiled origin the reference curve was computed at).
  [[nodiscard]] double driftDistance() const;

  /// Lipschitz bracket on the drifted rho from the anchor rho alone:
  /// anchorRho() -/+ driftDistance(), floored at 0. The tracker maintains
  /// rho exactly, so rhoLowerBound() <= rho() <= rhoUpperBound() is an
  /// invariant (pinned by tests); the bracket is what a consumer WITHOUT
  /// the update stream could still conclude from the drift distance, and
  /// rhoLowerBound() in particular floors every critical radius of the
  /// drifted degradation curve.
  [[nodiscard]] double rhoLowerBound() const;
  [[nodiscard]] double rhoUpperBound() const;

 private:
  void recomputeRho();

  const core::CompiledProblem* problem_;
  double threshold_;
  num::Vec origin_;   ///< drifted operating point
  num::Vec anchor_;   ///< compiled origin (curve reference)
  num::Vec dots_;     ///< per affine row: row . origin_
  double rho_ = 0.0;
  double anchorRho_ = 0.0;
  std::size_t binding_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace robust::curve
