// Monte-Carlo degradation curves: P(violation | r) for ALL radii in one
// batched pass.
//
// The robustness radius rho (Eq. 2) answers "how far can the perturbation
// drift before SOME tolerance bound is violated in the worst direction".
// Practitioners also want the graded view: if the perturbation lands r away
// from the assumed operating point in a random direction, what is the
// probability a bound is violated? The naive estimator fixes a radius grid
// and re-evaluates N sampled perturbations per grid point — O(grid x N)
// full metric evaluations.
//
// The engine here exploits the affine structure instead: along a fixed unit
// direction u, feature i's value moves LINEARLY, value(r) = (a_i . origin +
// c_i) + r (a_i . u), so the exact radius at which it crosses a tolerance
// bound is one division. The minimum over rows is the sample's CRITICAL
// RADIUS — the exact distance along u at which the first bound breaks — and
// P(violation | r) for EVERY r is simply the empirical CDF of the N
// per-sample critical radii: one batched dot-product pass plus one sort,
// no radius grid in the hot loop.
//
// Determinism contract: sample i draws its direction from the counter-based
// substream makeStream(seed, kCurveStreamFamily, i), critical radii are
// written to disjoint slots, and the row dots ride the fixed-order blocked
// kernels of robust/numeric/simd.hpp — so the curve is bit-identical across
// thread counts, shard sizes, and dispatch targets (scalar vs AVX2). The
// per-sample row loop prunes with the same provable screen as the metric
// lane (a row whose origin gap / dual norm already exceeds the incumbent
// critical radius, beyond a 1e-9 relative margin, cannot bind), which skips
// losers without changing the returned bits.
//
// Specs outside the closed-form lane — callable features, hard feasibility
// constraints, discrete perturbations, multi-subspace combined norms, or a
// non-analytic compiled solver — fall back to a full lane that brackets and
// bisects each sample's critical radius against the spec's own violation
// predicate. Same substreams, same determinism, more arithmetic per sample.
//
// Sampling model: directions are standard Gaussian vectors normalized to
// unit length under the problem's displacement norm. Under L2 that is the
// uniform distribution on the sphere; under L1/LInf/weighted norms it is
// the Gaussian angular measure on that norm's unit sphere — a fixed,
// documented model, NOT uniform surface measure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "robust/core/compiled.hpp"
#include "robust/curve/bands.hpp"
#include "robust/obs/report.hpp"

namespace robust::curve {

/// The substream family reserved for curve direction sampling (see
/// robust::makeStream(seed, family, id)). Spelled out so tests and
/// external replayers can regenerate sample i's direction exactly.
inline constexpr std::uint64_t kCurveStreamFamily = 0x63757276;  // "curv"

struct CurveOptions {
  std::size_t samples = 100000;   ///< Monte-Carlo direction samples (N)
  std::uint64_t seed = 1;         ///< substream master seed
  std::size_t gridPoints = 64;    ///< points reported on the curve digest
  double confidence = 0.99;       ///< band level for DKW + Clopper-Pearson
  std::size_t threads = 0;        ///< 0 = defaultThreadCount()
  std::size_t shardSamples = 8192;///< samples per dispatch shard
  bool prune = true;              ///< row screen (false pins bit-equality)
  bool useCache = true;           ///< consult the per-content-key cache
};

/// One reported point of the degradation curve: the empirical violation
/// probability at `radius` with its pointwise Clopper-Pearson band.
struct CurvePoint {
  double radius = 0.0;
  double probability = 0.0;  ///< empirical P(critical radius <= radius)
  double lower = 0.0;        ///< Clopper-Pearson lower bound
  double upper = 1.0;        ///< Clopper-Pearson upper bound
};

/// The full curve: every per-sample critical radius (sorted ascending,
/// +infinity tail for samples that never violate) plus the grid digest.
struct CurveResult {
  std::size_t samples = 0;      ///< N
  std::size_t finiteRadii = 0;  ///< samples with a finite critical radius
  std::uint64_t seed = 0;
  double confidence = 0.0;
  double dkwEpsilon = 0.0;      ///< uniform band half-width at `confidence`
  double rho = 0.0;             ///< the worst-case metric (Eq. 2) — a floor
                                ///< on every critical radius
  bool fastLane = false;        ///< closed-form lane (vs bracket/bisect)
  bool cacheHit = false;        ///< served from the content-key cache
  std::vector<double> radii;    ///< sorted critical radii, size == samples
  std::vector<CurvePoint> points;  ///< quantile-spaced digest, <= gridPoints

  /// Empirical P(violation | r): fraction of critical radii <= r.
  [[nodiscard]] double probabilityAt(double r) const;

  /// Smallest radius whose empirical violation probability reaches p
  /// (clamped to [1/N, 1]); +infinity when even the largest finite radius
  /// does not reach p.
  [[nodiscard]] double radiusAtProbability(double p) const;
};

/// Computes the degradation curve of `problem` at its compiled defaults.
/// Deterministic: (problem content, samples, seed, gridPoints, confidence,
/// prune) fully determine the result, bit for bit — threads and
/// shardSamples only change wall-clock time.
[[nodiscard]] CurveResult computeCurve(const core::CompiledProblem& problem,
                                       const CurveOptions& options = {});

/// FNV-1a content key of the problem's canonical wire encoding — the same
/// key robust::net derives for REGISTER_PROBLEM. Returns 0 when the
/// problem cannot cross the wire (callable features, multiple subspaces):
/// such problems are computed directly and never cached.
[[nodiscard]] std::uint64_t problemContentKey(
    const core::CompiledProblem& problem);

/// Drops every cached curve (tests and benches delimit cache behaviour).
void clearCurveCache() noexcept;

/// The norm of a displacement under the problem's perturbation geometry:
/// the maximum over subspaces of each block's own norm (reduces to the
/// single configured norm for legacy single-subspace problems).
[[nodiscard]] double displacementNorm(const core::CompiledProblem& problem,
                                      std::span<const double> displacement);

/// The "robust.curve" report section as a JSON object (schema_version 1):
/// {"schema", "schema_version", "samples", "finite", "seed", "confidence",
///  "dkw_epsilon", "rho", "fast_lane", "cache_hit", "points": [...]}.
[[nodiscard]] std::string curveSectionJson(const CurveResult& result);

/// Appends the curve digest to a run report as the top-level "curve"
/// section (validated by bench/report_check).
void appendCurveSection(obs::RunReport& report, const CurveResult& result);

}  // namespace robust::curve
