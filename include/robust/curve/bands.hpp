// Confidence bands for empirical degradation curves.
//
// The curve engine estimates P(violation | r) as an empirical CDF over N
// Monte-Carlo direction samples. Two standard bands qualify that estimate:
//
//   * Dvoretzky-Kiefer-Wolfowitz: a UNIFORM band — with probability at
//     least `confidence`, the true CDF lies within +/- dkwEpsilon of the
//     empirical CDF simultaneously at every radius.
//   * Clopper-Pearson: an exact POINTWISE binomial interval for the
//     violation probability at one radius (k of N samples violating).
//
// Both are hand-rolled (regularized incomplete beta via a Lentz continued
// fraction plus bisection) so results are deterministic across platforms
// and standard libraries — the bands land in committed bench baselines.
#pragma once

#include <cstddef>
#include <cstdint>

namespace robust::curve {

/// The DKW half-width: epsilon = sqrt(ln(2 / alpha) / (2 N)) with
/// alpha = 1 - confidence. Requires samples > 0 and confidence in (0, 1).
[[nodiscard]] double dkwEpsilon(std::size_t samples, double confidence);

/// A two-sided interval for a binomial proportion.
struct BinomialInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Exact Clopper-Pearson interval for `successes` out of `trials` at the
/// given two-sided confidence level:
///   lower = BetaInv(alpha/2; k, n - k + 1)       (0 when k == 0)
///   upper = BetaInv(1 - alpha/2; k + 1, n - k)   (1 when k == n)
/// Requires trials > 0, successes <= trials, confidence in (0, 1).
[[nodiscard]] BinomialInterval clopperPearson(std::uint64_t successes,
                                              std::uint64_t trials,
                                              double confidence);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1]. Exposed for the reference tests; ~1e-14 accuracy.
[[nodiscard]] double regularizedIncompleteBeta(double a, double b, double x);

}  // namespace robust::curve
