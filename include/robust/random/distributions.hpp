// Hand-rolled distribution samplers on top of the PCG32 bit source.
//
// The paper's instance generators (Section 4) draw from Gamma distributions
// parameterized by a mean and a "heterogeneity" — the coefficient of
// variation (stddev / mean) — following Ali, Siegel, Maheswaran, Hensgen,
// Sedigh-Ali, "Representing task and machine heterogeneities for
// heterogeneous computing systems", Tamkang J. Sci. Eng. 3(3), 2000 (ref [3]
// of the paper). All samplers are deterministic given the generator state,
// across platforms and standard libraries.
#pragma once

#include "robust/util/rng.hpp"

namespace robust::rnd {

/// Standard normal draw via the Box-Muller transform (one value per call;
/// the discarded sibling keeps the sampler stateless).
[[nodiscard]] double standardNormal(Pcg32& rng);

/// Both Box-Muller outputs from one pair of uniforms: `z0` is exactly the
/// value standardNormal(rng) would return for the same generator state;
/// `z1` is the sibling the scalar sampler discards. Throughput lane for
/// consumers that need whole Gaussian vectors (the curve engine's
/// direction generator draws dim values with ceil(dim / 2) pairs).
void standardNormalPair(Pcg32& rng, double& z0, double& z1);

/// Gamma(shape k, scale theta) draw via Marsaglia-Tsang squeeze (k >= 1)
/// with the Johnk-style boost for k < 1. Mean = k * theta, var = k * theta^2.
[[nodiscard]] double gamma(Pcg32& rng, double shape, double scale);

/// Gamma draw parameterized by mean > 0 and coefficient of variation cv > 0:
/// shape = 1 / cv^2, scale = mean * cv^2 — the paper's "heterogeneity"
/// parameterization. cv == 0 degenerates to the constant `mean`.
[[nodiscard]] double gammaMeanCv(Pcg32& rng, double mean, double cv);

/// Exponential draw with the given rate (mean 1/rate).
[[nodiscard]] double exponential(Pcg32& rng, double rate);

/// Uniform integer in [lo, hi] inclusive.
[[nodiscard]] int uniformInt(Pcg32& rng, int lo, int hi);

}  // namespace robust::rnd
