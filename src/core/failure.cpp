#include "robust/core/failure.hpp"

#include <algorithm>
#include <string>

#include "robust/obs/metrics.hpp"
#include "robust/util/error.hpp"

namespace robust::core {

namespace {

void validateModel(const FailureModel& model) {
  ROBUST_REQUIRE(model.machines > 0, "FailureModel: no machines");
  for (std::size_t t = 0; t < model.replicaHosts.size(); ++t) {
    const auto& hosts = model.replicaHosts[t];
    ROBUST_REQUIRE(!hosts.empty(), "FailureModel: task " + std::to_string(t) +
                                       " has no replica host");
    for (std::size_t h : hosts) {
      ROBUST_REQUIRE(h < model.machines,
                     "FailureModel: host index out of range for task " +
                         std::to_string(t));
    }
  }
}

}  // namespace

std::size_t distinctHostCount(std::span<const std::size_t> hosts) {
  std::vector<std::size_t> sorted(hosts.begin(), hosts.end());
  std::sort(sorted.begin(), sorted.end());
  return static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

bool survivesFailures(const FailureModel& model,
                      std::span<const std::size_t> failed) {
  validateModel(model);
  std::vector<bool> down(model.machines, false);
  for (std::size_t m : failed) {
    ROBUST_REQUIRE(m < model.machines,
                   "survivesFailures: failed machine index out of range");
    down[m] = true;
  }
  for (const auto& hosts : model.replicaHosts) {
    bool alive = false;
    for (std::size_t h : hosts) {
      if (!down[h]) {
        alive = true;
        break;
      }
    }
    if (!alive) {
      return false;
    }
  }
  return true;
}

std::size_t failureRadius(const FailureModel& model) {
  validateModel(model);
  std::size_t radius = model.machines;
  for (const auto& hosts : model.replicaHosts) {
    radius = std::min(radius, distinctHostCount(hosts) - 1);
  }
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kRadius = obs::gaugeId("core.failure.radius");
    obs::setGauge(kRadius, static_cast<std::int64_t>(radius));
  }
  return radius;
}

ProblemSpec failureSpec(const FailureModel& model) {
  validateModel(model);
  ROBUST_REQUIRE(!model.replicaHosts.empty(),
                 "failureSpec: a derivation needs at least one task");
  ProblemSpec spec;
  for (std::size_t t = 0; t < model.replicaHosts.size(); ++t) {
    // live_t(pi) = k_t - sum of pi_h over the task's distinct hosts: the
    // number of replicas still up under the failure indicator vector pi.
    num::Vec weights(model.machines, 0.0);
    std::size_t distinct = 0;
    for (std::size_t h : model.replicaHosts[t]) {
      if (weights[h] == 0.0) {
        weights[h] = -1.0;
        ++distinct;
      }
    }
    spec.features.push_back(PerformanceFeature{
        "live_" + std::to_string(t),
        ImpactFunction::affine(std::move(weights),
                               static_cast<double>(distinct)),
        ToleranceBounds::atLeast(1.0)});
  }
  PerturbationSubspace failures;
  failures.name = "machine failures";
  failures.origin = num::Vec(model.machines, 0.0);
  failures.norm = static_cast<int>(NormKind::L1);
  failures.discrete = true;
  failures.units = "failed machines";
  spec.subspaces.push_back(std::move(failures));
  return spec;
}

}  // namespace robust::core
