#include "robust/core/stream.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "robust/core/instance_file.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Process-wide monotone minimum of exact per-instance metrics. Relaxed
/// ordering is enough: correctness never depends on how fresh a loaded
/// value is (a stale — larger — incumbent only screens less), and every
/// stored value is the exact metric of some instance.
class SharedMin {
 public:
  [[nodiscard]] double load() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void update(double metric) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    for (;;) {
      if (!(metric < std::bit_cast<double>(cur))) {
        return;  // not an improvement (also rejects NaN)
      }
      if (bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(metric),
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(kInf)};
};

/// The winning candidate of one shard (or one reduction node): the exact
/// first-minimum over the instances it covers.
struct Winner {
  double metric = kInf;
  std::size_t argmin = kNoInstance;
  std::size_t binding = 0;
  bool floored = false;
};

/// Fixed-order pairwise combine; `a` must cover lower instance indices
/// than `b`. Strict < keeps the earlier side on ties — the same rule the
/// serial first-minimum fold applies — so any pairing order that
/// preserves index order yields the serial fold's exact result.
Winner combine(const Winner& a, const Winner& b) noexcept {
  return b.metric < a.metric ? b : a;
}

struct ShardOutcome {
  Winner winner;
  std::uint64_t screened = 0;
};

/// Reusable per-worker scratch: the mapped window, the per-instance
/// perturbation distances, the block-level active-row list, and the
/// metric-lane workspace. One arena serves every shard a worker pulls,
/// so the steady state allocates nothing.
struct Arena {
  util::MmapFile::View view;
  std::vector<double> delta;
  std::vector<std::uint32_t> active;
  std::vector<AnalysisInstance> instances;
  std::vector<MetricResult> results;
  MetricWorkspace metric;
};

}  // namespace

/// Friend of CompiledProblem: replicates the metric lane's row arithmetic
/// against on-disk shards and screens rows with the compiled
/// default-origin dots.
class StreamEngine {
 public:
  StreamEngine(const CompiledProblem& problem, const StreamOptions& options)
      : p_(problem), opt_(options) {
    // The screen's premises: every feature is an affine row evaluated by
    // the analytic kernel lane, and the metric is not discrete-floored
    // (flooring breaks the strict-inequality argument that lets a
    // screened instance be discarded).
    screen_ = opt_.screen && p_.fastSolver_ && p_.callables_.empty() &&
              !p_.parameter_.discrete && p_.rowCount() > 0;
    const auto dim = static_cast<double>(p_.dim_);
    relMargin_ = 1e-9 + 1e-15 * dim;
    absCoeff_ = 8.0 * 2.220446049250313e-16 * (dim + 4.0);
  }

  StreamResult run(const InstanceFileReader* reader,
                   std::span<const double> values) const;

 private:
  void scanShard(std::span<const double> vals, std::uint64_t firstIndex,
                 std::size_t count, Arena& arena, ShardOutcome& outcome,
                 SharedMin& shared, bool validate,
                 const std::string& source) const;

  /// True when row r of feature i provably cannot produce a radius at or
  /// below `rho` for any instance within L2 distance `delta` of the
  /// compiled default origin. The margins majorize every rounding the
  /// evaluating arithmetic can commit (DESIGN.md section 4.11), so a
  /// screened row can never change the returned bits.
  [[nodiscard]] bool screenRow(std::size_t i, std::size_t r, double delta,
                               double rho) const {
    const double deff = p_.effDual_[r];
    if (!(deff > 0.0)) {
      return false;  // degenerate / NaN dual norms must keep failing
                     // exactly as the serial lane fails
    }
    const double c = p_.constants_[i];
    const double refAt = p_.dotOrigin_[r] + c;
    const double move =
        delta * p_.dualNorms_[static_cast<int>(NormKind::L2)][r];
    const double slack =
        move * (1.0 + relMargin_) +
        absCoeff_ * (p_.absDotOrigin_[r] + std::fabs(c) + move);
    const double guard = rho * deff * (1.0 + relMargin_);
    const auto& bounds = p_.features_[i].bounds;
    if (bounds.min && !(refAt - slack > *bounds.min + guard)) {
      return false;
    }
    if (bounds.max && !(refAt + slack < *bounds.max - guard)) {
      return false;
    }
    return true;
  }

  /// The metric lane's exact row arithmetic for one file instance
  /// (scale 1, compiled constants), restricted to the rows of `active`
  /// that survive the per-instance screen against `rho`. Returns the
  /// candidate (metric, binding): exact whenever candidate <= rho.
  void scanActiveRows(std::span<const double> x, double delta, double rho,
                      std::span<const std::uint32_t> active,
                      double& candidate, std::size_t& binding) const {
    candidate = kInf;
    binding = 0;
    for (const std::uint32_t idx : active) {
      const auto i = static_cast<std::size_t>(idx);
      const std::size_t row = p_.rowIndex_[i];
      if (screenRow(i, row, delta, rho)) {
        continue;
      }
      const double atOrigin =
          num::simd::dotBlocked(p_.rowOf(i), x) + p_.constants_[i];
      const double deff = p_.effDual_[row];
      const auto& bounds = p_.features_[i].bounds;
      const bool withinMin = !bounds.min || atOrigin >= *bounds.min;
      const bool withinMax = !bounds.max || atOrigin <= *bounds.max;
      double radius;
      if (!withinMin || !withinMax) {
        radius = 0.0;  // violated at the operating point
      } else {
        ROBUST_REQUIRE(
            deff > 0.0,
            "analytic radius: impact does not depend on the parameter");
        double gap = kInf;
        if (bounds.min) {
          gap = std::fabs(atOrigin - *bounds.min);
        }
        if (bounds.max) {
          const double g2 = std::fabs(atOrigin - *bounds.max);
          if (g2 < gap) {
            gap = g2;
          }
        }
        if (opt_.prune && candidate < kInf &&
            gap > candidate * deff * (1.0 + 1e-9)) {
          continue;  // same bit-neutral prune as metricFromDots
        }
        radius = gap / deff;
      }
      if (radius < candidate) {
        candidate = radius;
        binding = i;
      }
    }
  }

  const CompiledProblem& p_;
  const StreamOptions& opt_;
  bool screen_ = false;
  double relMargin_ = 0.0;
  double absCoeff_ = 0.0;
};

void StreamEngine::scanShard(std::span<const double> vals,
                             std::uint64_t firstIndex, std::size_t count,
                             Arena& arena, ShardOutcome& outcome,
                             SharedMin& shared, bool validate,
                             const std::string& source) const {
  const std::size_t dim = p_.dim_;
  const std::size_t nFeatures = p_.features_.size();

  auto accept = [&](std::size_t localIdx, double metric, std::size_t binding,
                    bool floored) {
    if (metric < outcome.winner.metric) {
      outcome.winner.metric = metric;
      outcome.winner.argmin = static_cast<std::size_t>(firstIndex) + localIdx;
      outcome.winner.binding = binding;
      outcome.winner.floored = floored;
    }
    shared.update(metric);
  };

  if (!screen_) {
    // Unscreened lane: the exact cache-blocked batch scan the in-memory
    // path runs, with the shard as one block and the arena as its
    // workspace. Handles callables, discrete floors, and non-analytic
    // solver configurations.
    if (validate) {
      for (std::size_t i = 0; i < count; ++i) {
        const double* x = vals.data() + i * dim;
        for (std::size_t k = 0; k < dim; ++k) {
          if (!std::isfinite(x[k])) {
            util::Diagnostics(source).fail(
                util::RejectCategory::Domain,
                static_cast<std::size_t>(firstIndex) + i + 1, k + 1,
                "payload value " + util::formatValue(x[k]) +
                    " is not finite");
          }
        }
      }
    }
    arena.instances.resize(count);
    arena.results.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      arena.instances[i] =
          AnalysisInstance{vals.subspan(i * dim, dim), {}, {}};
    }
    p_.metricBlock(arena.instances, arena.results, 0, count, arena.metric,
                   opt_.prune);
    for (std::size_t i = 0; i < count; ++i) {
      accept(i, arena.results[i].metric, arena.results[i].bindingFeature,
             arena.results[i].floored);
    }
    return;
  }

  // Screened lane. Pass 1 (fused with the boundary's finiteness check):
  // per-instance L2 distance from the compiled default origin — the only
  // quantity the screen needs about an instance.
  arena.delta.resize(count);
  const double* origin0 = p_.parameter_.origin.data();
  for (std::size_t i = 0; i < count; ++i) {
    const double* x = vals.data() + i * dim;
    double sumSq = 0.0;
    for (std::size_t k = 0; k < dim; ++k) {
      const double v = x[k];
      if (validate && !std::isfinite(v)) {
        util::Diagnostics(source).fail(
            util::RejectCategory::Domain,
            static_cast<std::size_t>(firstIndex) + i + 1, k + 1,
            "payload value " + util::formatValue(v) + " is not finite");
      }
      const double d = v - origin0[k];
      sumSq += d * d;
    }
    arena.delta[i] = std::sqrt(sumSq);
  }

  // Pass 2, blockwise: one prescreen with the block's max distance
  // produces the active-row list every instance of the block shares;
  // instances then rescreen the (usually tiny) active list with their own
  // distance and evaluate the survivors row by row.
  constexpr std::size_t kScreenBlock = 64;
  for (std::size_t b0 = 0; b0 < count; b0 += kScreenBlock) {
    const std::size_t b1 = std::min(count, b0 + kScreenBlock);
    double deltaMax = 0.0;
    for (std::size_t i = b0; i < b1; ++i) {
      deltaMax = std::max(deltaMax, arena.delta[i]);
    }
    const double rhoBlock = std::min(outcome.winner.metric, shared.load());
    arena.active.clear();
    for (std::size_t i = 0; i < nFeatures; ++i) {
      if (!screenRow(i, p_.rowIndex_[i], deltaMax, rhoBlock)) {
        arena.active.push_back(static_cast<std::uint32_t>(i));
      }
    }
    if (arena.active.empty()) {
      // Every row of every instance in the block is provably above the
      // incumbent: the whole block is rejected without a dot product.
      outcome.screened += b1 - b0;
      continue;
    }
    if (arena.active.size() * 2 >= nFeatures) {
      // Screen not selective yet (cold incumbent): the full kernel pass
      // is cheaper per row than per-row dots. Results are exact.
      for (std::size_t i = b0; i < b1; ++i) {
        const AnalysisInstance inst{vals.subspan(i * dim, dim), {}, {}};
        const MetricResult r =
            p_.evaluateMetric(inst, arena.metric, opt_.prune);
        accept(i, r.metric, r.bindingFeature, r.floored);
      }
      continue;
    }
    for (std::size_t i = b0; i < b1; ++i) {
      const double rho = std::min(outcome.winner.metric, shared.load());
      double candidate;
      std::size_t binding;
      scanActiveRows(vals.subspan(i * dim, dim), arena.delta[i], rho,
                     arena.active, candidate, binding);
      if (candidate > rho) {
        // Every unevaluated row was screened against a value >= rho and
        // the evaluated minimum exceeds rho, so this instance's true
        // metric is strictly above an exact metric held elsewhere: it
        // can never be the global first-minimum.
        ++outcome.screened;
        continue;
      }
      accept(i, candidate, binding, false);
    }
  }
}

StreamResult StreamEngine::run(const InstanceFileReader* reader,
                               std::span<const double> values) const {
  const std::size_t dim = p_.dim_;
  ROBUST_REQUIRE(dim > 0,
                 "analyzeStream: problem has no perturbation dimension");
  ROBUST_REQUIRE(opt_.shardInstances > 0,
                 "analyzeStream: shardInstances must be positive");
  std::uint64_t total;
  bool validate = false;
  std::string source;
  if (reader != nullptr) {
    ROBUST_REQUIRE(reader->dim() == dim,
                   "analyzeStream: file dimension does not match the "
                   "compiled problem");
    total = reader->instances();
    validate = opt_.policy.requireFinite;
    source = reader->path();
  } else {
    ROBUST_REQUIRE(values.size() % dim == 0,
                   "analyzeStream: value count is not a multiple of the "
                   "problem dimension");
    total = values.size() / dim;
  }

  StreamResult result;
  result.metric = kInf;
  result.instances = total;
  if (total == 0) {
    return result;
  }
  const std::uint64_t shard = opt_.shardInstances;
  const std::uint64_t nShards = (total + shard - 1) / shard;
  result.shards = nShards;

  const obs::Span span("core.analyzeStream");
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kShards = obs::counterId("core.stream.shards");
    static const obs::MetricId kInstances =
        obs::counterId("core.stream.instances");
    static const obs::MetricId kQueue =
        obs::gaugeId("core.stream.queue_high_water");
    obs::addCounter(kShards, nShards);
    obs::addCounter(kInstances, total);
    obs::maxGauge(kQueue, static_cast<std::int64_t>(nShards));
  }

  std::vector<ShardOutcome> outcomes(static_cast<std::size_t>(nShards));
  SharedMin shared;
  auto processShard = [&](std::uint64_t s, Arena& arena) {
    const std::uint64_t first = s * shard;
    const auto count =
        static_cast<std::size_t>(std::min<std::uint64_t>(shard,
                                                         total - first));
    const std::span<const double> vals =
        reader != nullptr
            ? reader->read(first, count, arena.view)
            : values.subspan(static_cast<std::size_t>(first) * dim,
                             count * dim);
    scanShard(vals, first, count, arena,
              outcomes[static_cast<std::size_t>(s)], shared, validate,
              source);
  };

  std::size_t workers =
      opt_.threads == 0 ? defaultThreadCount() : opt_.threads;
  workers = static_cast<std::size_t>(
      std::min<std::uint64_t>(workers, nShards));
  if (workers <= 1) {
    Arena arena;
    for (std::uint64_t s = 0; s < nShards; ++s) {
      processShard(s, arena);
    }
  } else {
    // Dynamic shard tickets over a fixed worker set: any claim order is
    // fine because each shard writes only its own outcome slot and the
    // shared incumbent is a monotone minimum of exact metrics. A worker
    // failure is captured per shard and the lowest-index failure is
    // rethrown after the join — deterministic error surfacing, and a
    // throw can never tear down the pool mid-task.
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(nShards));
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::int64_t> inflight{0};
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&] {
        Arena arena;
        for (;;) {
          const std::uint64_t s =
              ticket.fetch_add(1, std::memory_order_relaxed);
          if (s >= nShards) {
            return;
          }
          if (obs::enabled()) [[unlikely]] {
            static const obs::MetricId kInflight =
                obs::gaugeId("core.stream.inflight_high_water");
            obs::maxGauge(kInflight,
                          inflight.fetch_add(1, std::memory_order_relaxed) +
                              1);
          } else {
            inflight.fetch_add(1, std::memory_order_relaxed);
          }
          try {
            processShard(s, arena);
          } catch (...) {
            errors[static_cast<std::size_t>(s)] = std::current_exception();
          }
          inflight.fetch_sub(1, std::memory_order_relaxed);
        }
      });
    }
    pool.wait();
    for (const std::exception_ptr& err : errors) {
      if (err) {
        std::rethrow_exception(err);
      }
    }
  }

  // Fixed-order pairwise reduction over the shard winners. Every combine
  // keeps the lower-shard side on ties, so the tree computes the same
  // first-minimum the serial left fold over instances computes.
  std::vector<Winner> level;
  level.reserve(outcomes.size());
  for (const ShardOutcome& o : outcomes) {
    level.push_back(o.winner);
    result.screenedInstances += o.screened;
  }
  while (level.size() > 1) {
    std::vector<Winner> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(combine(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level.swap(next);
  }
  result.metric = level[0].metric;
  result.argminInstance = level[0].argmin;
  result.bindingFeature = level[0].binding;
  result.floored = level[0].floored;
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kScreened =
        obs::counterId("core.stream.instances_screened");
    obs::addCounter(kScreened, result.screenedInstances);
  }
  return result;
}

StreamResult analyzeStream(const CompiledProblem& problem,
                           const std::string& path,
                           const StreamOptions& options) {
  const InstanceFileReader reader(path, options.policy);
  return StreamEngine(problem, options).run(&reader, {});
}

StreamResult analyzeStreamValues(const CompiledProblem& problem,
                                 std::span<const double> values,
                                 const StreamOptions& options) {
  return StreamEngine(problem, options).run(nullptr, values);
}

}  // namespace robust::core
