#include "robust/core/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/numeric/hyperplane.hpp"
#include "robust/numeric/projection.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dual norm of the hyperplane normal for the closed-form distance
/// |a.x0 - c| / ||a||_dual (dual of L2 is L2, of L1 is LInf, of LInf is L1;
/// the dual of the w-weighted Euclidean norm is the 1/w-weighted one).
double dualNorm(std::span<const double> a, NormKind norm,
                std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::normInf(a);
    case NormKind::L2:
      return num::norm2(a);
    case NormKind::LInf:
      return num::norm1(a);
    case NormKind::Weighted: {
      double s = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        s += a[i] * a[i] / weights[i];
      }
      return std::sqrt(s);
    }
  }
  return 0.0;  // unreachable
}

/// Nearest boundary point on the hyperplane {x : a.x = c} from x0 under the
/// chosen norm (the minimizer achieving the dual-norm distance), written
/// into `out` (buffer reuse; the arithmetic matches the legacy analyzer
/// exactly). `gap` is c - a.x0, which every caller has already computed from
/// the same dot product the legacy code used, so the bits are unchanged.
/// `weightedDenom`, when positive, must equal sum(a_i^2 / w_i); the
/// recomputation it replaces accumulates in the identical order, so passing
/// the hoisted value leaves every produced bit unchanged.
void nearestOnHyperplaneInto(std::span<const double> a, double gap,
                             std::span<const double> x0, NormKind norm,
                             std::span<const double> weights, num::Vec& out,
                             double weightedDenom = 0.0) {
  out.assign(x0.begin(), x0.end());
  switch (norm) {
    case NormKind::L2: {
      const double n2 = num::dot(a, a);
      num::axpy(gap / n2, a, out);
      break;
    }
    case NormKind::L1: {
      // Move only the coordinate with the largest |a_k|.
      std::size_t k = 0;
      for (std::size_t i = 1; i < a.size(); ++i) {
        if (std::fabs(a[i]) > std::fabs(a[k])) {
          k = i;
        }
      }
      out[k] += gap / a[k];
      break;
    }
    case NormKind::LInf: {
      // Move every coordinate by the same magnitude, signed with a_i.
      const double t = gap / num::norm1(a);
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += (a[i] > 0.0 ? 1.0 : (a[i] < 0.0 ? -1.0 : 0.0)) * t;
      }
      break;
    }
    case NormKind::Weighted: {
      // Lagrange: d_i = nu * a_i / w_i with nu = gap / sum(a_i^2 / w_i).
      double denom = weightedDenom;
      if (denom <= 0.0) {
        denom = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
          denom += a[i] * a[i] / weights[i];
        }
      }
      const double nu = gap / denom;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += nu * a[i] / weights[i];
      }
      break;
    }
  }
}

/// Adds the minimal-norm displacement achieving a . d = gap to the block
/// slice `out` (which already holds the block origin): the per-block body
/// of the multi-subspace boundary-point assembly. Mirrors the switch of
/// nearestOnHyperplaneInto, operating in place on a span.
void addBlockDisplacement(std::span<const double> a, double gap,
                          NormKind norm, std::span<const double> weights,
                          std::span<double> out) {
  switch (norm) {
    case NormKind::L2: {
      const double n2 = num::dot(a, a);
      const double t = gap / n2;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += t * a[i];
      }
      break;
    }
    case NormKind::L1: {
      std::size_t k = 0;
      for (std::size_t i = 1; i < a.size(); ++i) {
        if (std::fabs(a[i]) > std::fabs(a[k])) {
          k = i;
        }
      }
      out[k] += gap / a[k];
      break;
    }
    case NormKind::LInf: {
      const double t = gap / num::norm1(a);
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += (a[i] > 0.0 ? 1.0 : (a[i] < 0.0 ? -1.0 : 0.0)) * t;
      }
      break;
    }
    case NormKind::Weighted: {
      double denom = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        denom += a[i] * a[i] / weights[i];
      }
      const double nu = gap / denom;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += nu * a[i] / weights[i];
      }
      break;
    }
  }
}

const std::string kInfeasibleOrigin = "infeasible-origin";

double vectorNorm(std::span<const double> v, NormKind norm,
                  std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::norm1(v);
    case NormKind::L2:
      return num::norm2(v);
    case NormKind::LInf:
      return num::normInf(v);
    case NormKind::Weighted:
      return num::weightedNorm2(v, weights);
  }
  return 0.0;  // unreachable
}

/// Interned solver-method labels ("analytic-l2", ...), so evaluation never
/// concatenates strings.
const std::string& analyticMethodName(NormKind norm) {
  static const std::string names[4] = {"analytic-l1", "analytic-l2",
                                       "analytic-linf", "analytic-weighted"};
  return names[static_cast<std::size_t>(norm)];
}

const std::string kViolatedAtOrigin = "violated-at-origin";

/// The legacy iterative/Monte-Carlo radius path for one feature and one
/// boundary level. Kept verbatim from the pre-compiled analyzer so reports
/// stay bit-identical.
RadiusReport radiusAgainstLevelIterative(const ImpactFunction& impact,
                                         const std::string& name,
                                         double level,
                                         std::span<const double> origin,
                                         SolverKind solver,
                                         const AnalyzerOptions& options) {
  RadiusReport report;
  report.feature = name;
  report.boundaryLevel = level;

  if (solver == SolverKind::Analytic) {
    ROBUST_REQUIRE(impact.isAffine(),
                   "analytic radius requires an affine impact function");
    const auto& w = impact.weights();
    const double c = level - impact.constant();
    const double denom = dualNorm(w, options.norm, options.normWeights);
    ROBUST_REQUIRE(denom > 0.0,
                   "analytic radius: impact does not depend on the parameter");
    const double dotOrigin = num::dot(w, origin);
    report.radius = std::fabs(dotOrigin - c) / denom;
    nearestOnHyperplaneInto(w, c - dotOrigin, origin, options.norm,
                            options.normWeights, report.boundaryPoint);
    report.method = analyticMethodName(options.norm);
    return report;
  }

  if (solver == SolverKind::MonteCarlo) {
    num::NearestPointProblem problem;
    problem.g = impact.field();
    problem.gradient = impact.gradientField();
    problem.level = level;
    problem.origin.assign(origin.begin(), origin.end());
    try {
      // For non-Euclidean norms the estimator minimizes the requested norm
      // directly (each sampled crossing is measured in that norm).
      num::ScalarField measure;
      if (options.norm != NormKind::L2) {
        const NormKind norm = options.norm;
        const num::Vec weights = options.normWeights;
        measure = [norm, weights](std::span<const double> d) {
          return vectorNorm(d, norm, weights);
        };
      }
      auto mc = num::monteCarloRadius(problem, options.solverOptions, measure);
      report.radius = mc.distance;
      report.boundaryPoint = std::move(mc.point);
      report.method = mc.method;
    } catch (const ConvergenceError&) {
      report.radius = kInf;
      report.boundReachable = false;
      report.method = "monte-carlo";
    }
    return report;
  }

  ROBUST_REQUIRE(options.norm == NormKind::L2,
                 "iterative radius solvers support the l2 norm only");
  num::NearestPointProblem problem;
  problem.g = impact.field();
  problem.gradient = impact.gradientField();
  problem.level = level;
  problem.origin.assign(origin.begin(), origin.end());
  try {
    num::NearestPointResult solved;
    switch (solver) {
      case SolverKind::KktNewton:
        solved = num::solveNearestPoint(problem, options.solverOptions);
        break;
      case SolverKind::RaySearch:
        solved = num::raySearch(problem, options.solverOptions);
        break;
      default:
        ROBUST_REQUIRE(false, "unexpected solver kind");
    }
    report.radius = solved.distance;
    report.boundaryPoint = std::move(solved.point);
    report.method = std::move(solved.method);
  } catch (const ConvergenceError&) {
    report.radius = kInf;
    report.boundReachable = false;
    report.method = "unreachable";
  }
  return report;
}

}  // namespace

void evaluateAffineRadius(const AffineFeatureView& feature,
                          std::span<const double> origin,
                          const AnalyzerOptions& options,
                          std::string_view name, RadiusReport& out,
                          double dualNormHint, double weightedDenomHint) {
  out.feature.assign(name.data(), name.size());
  const double dotOrigin = num::dot(feature.weights, origin);
  const double atOrigin = dotOrigin + feature.constant;

  const bool withinMin = !feature.boundMin || atOrigin >= *feature.boundMin;
  const bool withinMax = !feature.boundMax || atOrigin <= *feature.boundMax;
  if (!withinMin || !withinMax) {
    // Already violated at the operating point: zero robustness.
    out.radius = 0.0;
    out.boundaryPoint.assign(origin.begin(), origin.end());
    out.boundaryLevel = atOrigin;
    out.boundReachable = true;
    out.method = kViolatedAtOrigin;
    return;
  }

  const double denom =
      dualNormHint > 0.0
          ? dualNormHint
          : dualNorm(feature.weights, options.norm, options.normWeights);
  ROBUST_REQUIRE(denom > 0.0,
                 "analytic radius: impact does not depend on the parameter");

  // Pick the binding bound first (the same strict-< selection the legacy
  // analyzer used), then materialize its boundary point once.
  double bestRadius = kInf;
  double bestLevel = 0.0;
  bool haveBest = false;
  for (const auto& level : {feature.boundMin, feature.boundMax}) {
    if (!level) {
      continue;
    }
    const double radius =
        std::fabs(dotOrigin - (*level - feature.constant)) / denom;
    if (radius < bestRadius) {
      bestRadius = radius;
      bestLevel = *level;
      haveBest = true;
    }
  }
  if (!haveBest) {
    out.radius = kInf;
    out.boundaryPoint.clear();
    out.boundaryLevel = 0.0;
    out.boundReachable = false;
    out.method.clear();
    return;
  }
  out.radius = bestRadius;
  out.boundaryLevel = bestLevel;
  out.boundReachable = true;
  out.method = analyticMethodName(options.norm);
  nearestOnHyperplaneInto(feature.weights,
                          (bestLevel - feature.constant) - dotOrigin, origin,
                          options.norm, options.normWeights, out.boundaryPoint,
                          weightedDenomHint);
}

CompiledProblem CompiledProblem::compile(ProblemSpec spec) {
  CompiledProblem p;
  p.features_ = std::move(spec.features);
  p.options_ = std::move(spec.options);

  ROBUST_REQUIRE(!p.features_.empty(),
                 "CompiledProblem: at least one feature required");

  // Normalize the perturbation space to the subspace table. A legacy spec
  // (parameter + options.norm) becomes the single equivalent subspace; an
  // explicit subspace list is authoritative and the legacy parameter view
  // is derived from it (concatenated origin, discrete iff every block is).
  if (spec.subspaces.empty()) {
    p.parameter_ = std::move(spec.parameter);
    ROBUST_REQUIRE(!p.parameter_.origin.empty(),
                   "CompiledProblem: empty perturbation origin");
    PerturbationSubspace sub;
    sub.name = p.parameter_.name;
    sub.origin = p.parameter_.origin;
    sub.norm = static_cast<int>(p.options_.norm);
    sub.normWeights = p.options_.normWeights;
    sub.discrete = p.parameter_.discrete;
    sub.units = p.parameter_.units;
    p.subspaces_.push_back(std::move(sub));
  } else {
    p.subspaces_ = std::move(spec.subspaces);
    num::Vec origin;
    bool allDiscrete = true;
    std::string name;
    for (const PerturbationSubspace& sub : p.subspaces_) {
      ROBUST_REQUIRE(!sub.origin.empty(),
                     "CompiledProblem: subspace '" + sub.name +
                         "' has an empty origin");
      origin.insert(origin.end(), sub.origin.begin(), sub.origin.end());
      allDiscrete = allDiscrete && sub.discrete;
      if (!name.empty()) {
        name += " + ";
      }
      name += sub.name;
    }
    p.parameter_.name = std::move(name);
    p.parameter_.origin = std::move(origin);
    p.parameter_.discrete = allDiscrete;
    p.parameter_.units =
        p.subspaces_.size() == 1 ? p.subspaces_[0].units : std::string{};
    if (p.subspaces_.size() == 1) {
      // A single explicit subspace IS the legacy formulation: route it
      // through the identical options-driven arithmetic.
      p.options_.norm = static_cast<NormKind>(p.subspaces_[0].norm);
      p.options_.normWeights = p.subspaces_[0].normWeights;
    }
  }
  p.multi_ = p.subspaces_.size() > 1;
  p.dim_ = p.parameter_.origin.size();

  p.subOffsets_.resize(p.subspaces_.size() + 1);
  p.subOffsets_[0] = 0;
  for (std::size_t s = 0; s < p.subspaces_.size(); ++s) {
    const PerturbationSubspace& sub = p.subspaces_[s];
    ROBUST_REQUIRE(sub.norm >= 0 && sub.norm <= 3,
                   "CompiledProblem: subspace '" + sub.name +
                       "' has an invalid norm kind");
    if (static_cast<NormKind>(sub.norm) == NormKind::Weighted) {
      ROBUST_REQUIRE(sub.normWeights.size() == sub.origin.size(),
                     "CompiledProblem: weighted subspace '" + sub.name +
                         "' requires one weight per component");
      for (double w : sub.normWeights) {
        ROBUST_REQUIRE(w > 0.0,
                       "CompiledProblem: norm weights must be positive");
      }
    }
    p.subOffsets_[s + 1] = p.subOffsets_[s] + sub.origin.size();
  }
  if (!p.multi_ && p.options_.norm == NormKind::Weighted) {
    ROBUST_REQUIRE(p.options_.normWeights.size() == p.dim_,
                   "CompiledProblem: weighted norm requires one weight "
                   "per perturbation component");
    for (double w : p.options_.normWeights) {
      ROBUST_REQUIRE(w > 0.0,
                     "CompiledProblem: norm weights must be positive");
    }
  }

  const std::size_t n = p.features_.size();
  p.rowIndex_.assign(n, kNoRow);
  p.constants_.assign(n, 0.0);
  std::size_t rows = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = p.features_[i];
    const auto dim = f.impact.dimension();
    ROBUST_REQUIRE(!dim || *dim == p.dim_,
                   "CompiledProblem: impact dimension of '" + f.name +
                       "' does not match the perturbation parameter");
    ROBUST_REQUIRE(f.bounds.min || f.bounds.max,
                   "CompiledProblem: feature '" + f.name +
                       "' has no tolerable-variation bound");
    if (f.impact.isAffine()) {
      p.rowIndex_[i] = rows++;
      p.constants_[i] = f.impact.constant();
    } else {
      p.callables_.push_back(i);
    }
  }

  // Pack the affine lane: one dense row-major matrix plus, per row, the
  // dual norm under every NormKind (the Weighted entry needs compiled norm
  // weights of the right size; otherwise it is NaN).
  p.weights_.resize(rows * p.dim_);
  for (int k = 0; k < 4; ++k) {
    p.dualNorms_[k].assign(rows, std::numeric_limits<double>::quiet_NaN());
  }
  p.weightedDenom_.assign(rows, std::numeric_limits<double>::quiet_NaN());
  p.absDotOrigin_.assign(rows, 0.0);
  const bool haveWeighted = p.options_.normWeights.size() == p.dim_;
  for (std::size_t i = 0; i < n; ++i) {
    if (p.rowIndex_[i] == kNoRow) {
      continue;
    }
    const num::Vec& w = p.features_[i].impact.weights();
    std::copy(w.begin(), w.end(),
              p.weights_.begin() +
                  static_cast<std::ptrdiff_t>(p.rowIndex_[i] * p.dim_));
    const std::span<const double> row = p.rowOf(i);
    const std::size_t r = p.rowIndex_[i];
    p.dualNorms_[static_cast<int>(NormKind::L1)][r] =
        dualNorm(row, NormKind::L1, {});
    p.dualNorms_[static_cast<int>(NormKind::L2)][r] =
        dualNorm(row, NormKind::L2, {});
    p.dualNorms_[static_cast<int>(NormKind::LInf)][r] =
        dualNorm(row, NormKind::LInf, {});
    // Magnitude scale for the streaming screen's rounding bound: the
    // absolute-value dot at the default origin majorizes every partial
    // sum the kernel dot of a nearby instance can form.
    double absDot = 0.0;
    for (std::size_t k = 0; k < p.dim_; ++k) {
      absDot += std::fabs(row[k] * p.parameter_.origin[k]);
    }
    p.absDotOrigin_[r] = absDot;
    if (haveWeighted) {
      p.dualNorms_[static_cast<int>(NormKind::Weighted)][r] =
          dualNorm(row, NormKind::Weighted, p.options_.normWeights);
      // The un-sqrted dual norm, accumulated in the exact order the
      // per-evaluate recomputation used: passing it as a hint later
      // changes no bits.
      double s = 0.0;
      for (std::size_t k = 0; k < p.dim_; ++k) {
        s += row[k] * row[k] / p.options_.normWeights[k];
      }
      p.weightedDenom_[r] = s;
    }
  }

  // Effective dual of the COMBINED displacement norm (max over subspaces
  // of the block norm): the sum over blocks of the block-restricted dual.
  // With one subspace this is the very dualNorm() call that filled
  // dualNorms_, so the legacy lane's bits are reused unchanged.
  const std::size_t nSub = p.subspaces_.size();
  if (!p.multi_) {
    p.effDual_ = p.dualNorms_[static_cast<int>(p.options_.norm)];
  } else {
    p.blockDuals_.assign(rows * nSub, 0.0);
    p.effDual_.assign(rows, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = p.rowIndex_[i];
      if (r == kNoRow) {
        continue;
      }
      const std::span<const double> row = p.rowOf(i);
      double sum = 0.0;
      for (std::size_t s = 0; s < nSub; ++s) {
        const PerturbationSubspace& sub = p.subspaces_[s];
        const double d = dualNorm(
            row.subspan(p.subOffsets_[s], sub.origin.size()),
            static_cast<NormKind>(sub.norm), sub.normWeights);
        p.blockDuals_[r * nSub + s] = d;
        sum += d;
      }
      p.effDual_[r] = sum;
    }
  }

  const bool analyticConfig = p.options_.solver == SolverKind::Auto ||
                              p.options_.solver == SolverKind::Analytic;
  if (p.multi_) {
    // The iterative/Monte-Carlo solvers measure plain L2 distance; under
    // the combined block norm only the analytic affine lane is defined.
    ROBUST_REQUIRE(p.callables_.empty(),
                   "CompiledProblem: multiple subspaces require affine "
                   "features");
    ROBUST_REQUIRE(analyticConfig,
                   "CompiledProblem: multiple subspaces require the "
                   "Auto/Analytic solver");
  }

  p.constraints_ = std::move(spec.constraints);
  for (const LinearConstraint& c : p.constraints_) {
    ROBUST_REQUIRE(c.coeffs.size() == p.dim_,
                   "CompiledProblem: constraint '" + c.name +
                       "' dimension does not match the perturbation space");
    ROBUST_REQUIRE(num::norm2(c.coeffs) > 0.0,
                   "CompiledProblem: constraint '" + c.name +
                       "' has a zero coefficient row");
  }
  if (!p.constraints_.empty()) {
    ROBUST_REQUIRE(p.callables_.empty(),
                   "CompiledProblem: constraints require affine features");
    ROBUST_REQUIRE(analyticConfig,
                   "CompiledProblem: constraints require the Auto/Analytic "
                   "solver");
    for (const PerturbationSubspace& sub : p.subspaces_) {
      const auto kind = static_cast<NormKind>(sub.norm);
      ROBUST_REQUIRE(kind == NormKind::L2 || kind == NormKind::Weighted,
                     "CompiledProblem: constraints require Euclidean "
                     "(L2/Weighted) subspace norms");
    }
  }

  // The metric lane's kernel fast path applies when affine rows resolve to
  // the analytic solver AND no feasibility region clips the radius search;
  // cache their default-origin dots (blocked kernel order — the lane's own
  // arithmetic, not the legacy element order).
  p.fastSolver_ = analyticConfig && p.constraints_.empty();
  p.dotOrigin_.resize(rows);
  num::simd::dotRowsBlocked(p.weights_.data(), rows, p.parameter_.origin,
                            p.dotOrigin_.data());
  return p;
}

double CompiledProblem::rowDualNorm(std::size_t feature, NormKind norm) const {
  ROBUST_REQUIRE(feature < features_.size(),
                 "CompiledProblem: feature index out of range");
  if (rowIndex_[feature] == kNoRow) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return dualNorms_[static_cast<int>(norm)][rowIndex_[feature]];
}

void CompiledProblem::radiusOfInto(std::size_t index,
                                   std::span<const double> origin,
                                   double constant, double scale,
                                   RadiusReport& out,
                                   EvalWorkspace& workspace) const {
  const PerformanceFeature& f = features_[index];
  const bool affine = rowIndex_[index] != kNoRow;

  SolverKind solver = options_.solver;
  if (solver == SolverKind::Auto) {
    solver = affine ? SolverKind::Analytic : SolverKind::KktNewton;
  }

  if (affine && solver == SolverKind::Analytic) {
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kAnalytic =
          obs::counterId("core.radius_analytic");
      obs::addCounter(kAnalytic);
    }
    if (multi_) {
      radiusOfMulti(index, origin, constant, scale, out, workspace);
      if (!constraints_.empty()) {
        clipToFeasible(index, origin, constant, scale, out);
      }
      return;
    }
    std::span<const double> w = rowOf(index);
    double hint = dualNorms_[static_cast<int>(options_.norm)][rowIndex_[index]];
    double weightedHint = options_.norm == NormKind::Weighted
                              ? weightedDenom_[rowIndex_[index]]
                              : 0.0;
    if (scale != 1.0) {
      ROBUST_REQUIRE(scale > 0.0,
                     "CompiledProblem: instance scales must be positive");
      workspace.scaledRow_.resize(dim_);
      for (std::size_t k = 0; k < dim_; ++k) {
        workspace.scaledRow_[k] = w[k] * scale;
      }
      w = workspace.scaledRow_;
      hint = 0.0;          // recompute on the scaled row
      weightedHint = 0.0;  // likewise
    }
    evaluateAffineRadius(
        AffineFeatureView{w, constant, f.bounds.min, f.bounds.max}, origin,
        options_, f.name, out, hint, weightedHint);
    if (!constraints_.empty()) {
      clipToFeasible(index, origin, constant, scale, out);
    }
    return;
  }

  // Iterative / Monte-Carlo lane (and explicit-analytic on a callable,
  // which must keep throwing exactly as the legacy analyzer did — but only
  // after the at-origin check).
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kSlow = obs::counterId("core.radius_slow");
    obs::addCounter(kSlow);
  }
  radiusSlowPath(index, origin, constant, scale,
                 affine ? rowOf(index) : std::span<const double>{}, solver,
                 out);
}

void CompiledProblem::radiusSlowPath(std::size_t index,
                                     std::span<const double> origin,
                                     double constant, double scale,
                                     std::span<const double> weights,
                                     SolverKind solver,
                                     RadiusReport& out) const {
  const PerformanceFeature& f = features_[index];
  const bool affine = rowIndex_[index] != kNoRow;

  // Materialize the effective impact when the instance overrides the
  // compiled constants or scales (affine lane only).
  const ImpactFunction* impact = &f.impact;
  std::optional<ImpactFunction> materialized;
  if (affine && (scale != 1.0 || constant != constants_[index])) {
    ROBUST_REQUIRE(scale > 0.0,
                   "CompiledProblem: instance scales must be positive");
    num::Vec w(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      w[k] = weights[k] * scale;
    }
    materialized.emplace(ImpactFunction::affine(std::move(w), constant));
    impact = &*materialized;
  }

  const double atOrigin = impact->evaluate(origin);
  if (!f.bounds.contains(atOrigin)) {
    // Already violated at the operating point: zero robustness.
    out.feature = f.name;
    out.radius = 0.0;
    out.boundaryPoint.assign(origin.begin(), origin.end());
    out.boundaryLevel = atOrigin;
    out.boundReachable = true;
    out.method = kViolatedAtOrigin;
    return;
  }

  RadiusReport best;
  best.feature = f.name;
  best.radius = kInf;
  best.boundReachable = false;
  for (const auto& level : {f.bounds.min, f.bounds.max}) {
    if (!level) {
      continue;
    }
    RadiusReport candidate = radiusAgainstLevelIterative(
        *impact, f.name, *level, origin, solver, options_);
    if (candidate.radius < best.radius) {
      best = std::move(candidate);
    }
  }
  out = std::move(best);
}

void CompiledProblem::radiusOfMulti(std::size_t index,
                                    std::span<const double> origin,
                                    double constant, double scale,
                                    RadiusReport& out,
                                    EvalWorkspace& workspace) const {
  const PerformanceFeature& f = features_[index];
  const std::size_t row = rowIndex_[index];
  const std::size_t nSub = subspaces_.size();
  std::span<const double> w = rowOf(index);
  const double* blockDual = blockDuals_.data() + row * nSub;
  num::Vec scaledDuals;
  if (scale != 1.0) {
    ROBUST_REQUIRE(scale > 0.0,
                   "CompiledProblem: instance scales must be positive");
    workspace.scaledRow_.resize(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      workspace.scaledRow_[k] = w[k] * scale;
    }
    w = workspace.scaledRow_;
    // Dual norms are positively homogeneous: dual(s * a) = s * dual(a).
    scaledDuals.resize(nSub);
    for (std::size_t s = 0; s < nSub; ++s) {
      scaledDuals[s] = blockDual[s] * scale;
    }
    blockDual = scaledDuals.data();
  }
  double denom = 0.0;
  for (std::size_t s = 0; s < nSub; ++s) {
    denom += blockDual[s];
  }

  out.feature = f.name;
  const double dotOrigin = num::dot(w, origin);
  const double atOrigin = dotOrigin + constant;
  if (!f.bounds.contains(atOrigin)) {
    out.radius = 0.0;
    out.boundaryPoint.assign(origin.begin(), origin.end());
    out.boundaryLevel = atOrigin;
    out.boundReachable = true;
    out.method = kViolatedAtOrigin;
    return;
  }
  ROBUST_REQUIRE(denom > 0.0,
                 "analytic radius: impact does not depend on the parameter");

  double bestRadius = kInf;
  double bestLevel = 0.0;
  bool haveBest = false;
  for (const auto& level : {f.bounds.min, f.bounds.max}) {
    if (!level) {
      continue;
    }
    const double radius = std::fabs(dotOrigin - (*level - constant)) / denom;
    if (radius < bestRadius) {
      bestRadius = radius;
      bestLevel = *level;
      haveBest = true;
    }
  }
  if (!haveBest) {
    out.radius = kInf;
    out.boundaryPoint.clear();
    out.boundaryLevel = 0.0;
    out.boundReachable = false;
    out.method.clear();
    return;
  }
  out.radius = bestRadius;
  out.boundaryLevel = bestLevel;
  out.boundReachable = true;
  static const std::string kMulti = "analytic-multi";
  out.method = kMulti;

  // Boundary point: the displacement that reaches the hyperplane with the
  // smallest combined (max-over-blocks) norm spreads the gap across blocks
  // proportionally to their dual norms — every contributing block then sits
  // at the same block-norm distance, the radius.
  out.boundaryPoint.assign(origin.begin(), origin.end());
  const double gap = (bestLevel - constant) - dotOrigin;
  for (std::size_t s = 0; s < nSub; ++s) {
    if (!(blockDual[s] > 0.0)) {
      continue;  // the row does not touch this block; it stays at origin
    }
    const PerturbationSubspace& sub = subspaces_[s];
    const std::size_t off = subOffsets_[s];
    const std::size_t len = sub.origin.size();
    addBlockDisplacement(w.subspan(off, len), gap * blockDual[s] / denom,
                         static_cast<NormKind>(sub.norm), sub.normWeights,
                         std::span<double>(out.boundaryPoint).subspan(off,
                                                                      len));
  }
}

bool CompiledProblem::originFeasible(std::span<const double> origin) const {
  for (const LinearConstraint& c : constraints_) {
    const double v = num::dot(c.coeffs, origin);
    if (v > c.bound + 1e-12 * (1.0 + std::fabs(c.bound))) {
      return false;
    }
  }
  return true;
}

void CompiledProblem::reportInfeasibleOrigin(std::span<const double> origin,
                                             RobustnessReport& report) const {
  const std::size_t n = features_.size();
  report.radii.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    RadiusReport& r = report.radii[i];
    r.feature = features_[i].name;
    r.radius = 0.0;
    r.boundaryPoint.assign(origin.begin(), origin.end());
    r.boundaryLevel = 0.0;
    r.boundReachable = true;
    r.method = kInfeasibleOrigin;
  }
  report.metric = 0.0;
  report.bindingFeature = 0;
  report.floored = false;
  report.infeasibleOrigin = true;
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kInfeasible =
        obs::counterId("core.feasibility.infeasible_origin");
    obs::addCounter(kInfeasible);
  }
}

void CompiledProblem::clipToFeasible(std::size_t index,
                                     std::span<const double> origin,
                                     double constant, double scale,
                                     RadiusReport& out) const {
  if (out.radius == 0.0 || !out.boundReachable) {
    return;  // violated at origin / no boundary: nothing to clip
  }
  bool pointFeasible = true;
  for (const LinearConstraint& c : constraints_) {
    const double v = num::dot(c.coeffs, out.boundaryPoint);
    if (v > c.bound + 1e-9 * (1.0 + std::fabs(c.bound))) {
      pointFeasible = false;
      break;
    }
  }
  if (pointFeasible) {
    return;  // the unconstrained nearest violation is admissible as-is
  }
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kClipped =
        obs::counterId("core.feasibility.clipped");
    obs::addCounter(kClipped);
  }

  const PerformanceFeature& f = features_[index];
  std::span<const double> w = rowOf(index);
  num::Vec scaledRow;
  if (scale != 1.0) {
    ROBUST_REQUIRE(scale > 0.0,
                   "CompiledProblem: instance scales must be positive");
    scaledRow.resize(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      scaledRow[k] = w[k] * scale;
    }
    w = scaledRow;
  }

  // Rescale coordinates so every (L2/Weighted) subspace norm becomes plain
  // L2: x~_k = t_k x_k with t_k = sqrt(w_k). Halfspace normals transform
  // contravariantly (n~_k = n_k / t_k); block balls become Euclidean.
  const std::size_t nSub = subspaces_.size();
  num::Vec t(dim_, 1.0);
  for (std::size_t s = 0; s < nSub; ++s) {
    const PerturbationSubspace& sub = subspaces_[s];
    if (static_cast<NormKind>(sub.norm) == NormKind::Weighted) {
      for (std::size_t i = 0; i < sub.origin.size(); ++i) {
        t[subOffsets_[s] + i] = std::sqrt(sub.normWeights[i]);
      }
    }
  }
  num::Vec tx0(dim_);
  for (std::size_t k = 0; k < dim_; ++k) {
    tx0[k] = origin[k] * t[k];
  }
  std::vector<num::Halfspace> sets(1 + constraints_.size());
  for (std::size_t j = 0; j < constraints_.size(); ++j) {
    num::Halfspace& h = sets[1 + j];
    h.normal.resize(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      h.normal[k] = constraints_[j].coeffs[k] / t[k];
    }
    h.offset = constraints_[j].bound;
    h.geq = false;
  }
  num::Vec an(dim_);
  for (std::size_t k = 0; k < dim_; ++k) {
    an[k] = w[k] / t[k];
  }

  const num::ProjectionOptions popt;
  double bestRadius = kInf;
  double bestLevel = 0.0;
  num::Vec bestPoint;
  const std::string* method = nullptr;
  static const std::string kDykstra = "dykstra-clip";
  static const std::string kPocs = "pocs-bisect";
  static const std::string kInfeasibleRegion = "infeasible-region";

  const double dot0 = num::dot(w, origin);
  double effD = 0.0;
  if (multi_) {
    const double* blockDual =
        blockDuals_.data() + rowIndex_[index] * nSub;
    for (std::size_t s = 0; s < nSub; ++s) {
      effD += blockDual[s] * scale;
    }
  }

  auto untransform = [&](const num::Vec& p) {
    num::Vec x(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      x[k] = p[k] / t[k];
    }
    return x;
  };

  auto solveBound = [&](double level, bool geq) {
    num::Halfspace& viol = sets[0];
    viol.normal = an;
    viol.offset = level - constant;
    viol.geq = geq;
    if (nSub == 1) {
      // One Euclidean subspace: the constrained nearest violation is the
      // exact Dykstra projection of the origin onto {violation halfspace}
      // intersected with the capacity polytope.
      const num::ProjectionResult res =
          num::projectOntoIntersection(sets, tx0, popt);
      if (!res.converged) {
        return;  // empty intersection: this bound is unreachable
      }
      double sumSq = 0.0;
      for (std::size_t k = 0; k < dim_; ++k) {
        const double d = res.point[k] - tx0[k];
        sumSq += d * d;
      }
      const double dist = std::sqrt(sumSq);
      if (dist < bestRadius) {
        bestRadius = dist;
        bestLevel = level;
        bestPoint = untransform(res.point);
        method = &kDykstra;
      }
      return;
    }
    // Several subspaces: the combined norm (max over block L2 norms) is
    // not Euclidean, so bisect on the radius with a POCS membership
    // oracle over {halfspaces} + {per-block balls of radius r}.
    std::vector<num::BlockBall> balls(nSub);
    for (std::size_t s = 0; s < nSub; ++s) {
      balls[s].offset = subOffsets_[s];
      balls[s].center.assign(
          tx0.begin() + static_cast<std::ptrdiff_t>(subOffsets_[s]),
          tx0.begin() + static_cast<std::ptrdiff_t>(subOffsets_[s + 1]));
    }
    num::Vec pt;
    auto member = [&](double r) {
      for (num::BlockBall& b : balls) {
        b.radius = r;
      }
      num::ProjectionResult res = num::feasiblePoint(sets, balls, tx0, popt);
      if (res.converged) {
        pt = std::move(res.point);
      }
      return res.converged;
    };
    double lo = std::fabs(dot0 - (level - constant)) / effD;
    double candidate;
    if (member(lo)) {
      candidate = lo;  // the unconstrained radius is already achievable
    } else {
      double hi = std::max(lo, 1e-6);
      bool found = false;
      for (int d = 0; d < 64 && !found; ++d) {
        hi *= 2.0;
        found = member(hi);
      }
      if (!found) {
        return;  // no feasible violation at any radius: unreachable
      }
      for (int it = 0; it < 100 && hi - lo > 1e-9 * std::max(1.0, hi);
           ++it) {
        const double mid = 0.5 * (lo + hi);
        if (member(mid)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      candidate = hi;  // pt holds the POCS point of the last feasible r
    }
    if (candidate < bestRadius) {
      bestRadius = candidate;
      bestLevel = level;
      bestPoint = untransform(pt);
      method = &kPocs;
    }
  };
  if (f.bounds.min) {
    solveBound(*f.bounds.min, /*geq=*/false);
  }
  if (f.bounds.max) {
    solveBound(*f.bounds.max, /*geq=*/true);
  }

  if (method == nullptr) {
    out.radius = kInf;
    out.boundaryPoint.clear();
    out.boundaryLevel = 0.0;
    out.boundReachable = false;
    out.method = kInfeasibleRegion;
    return;
  }
  out.radius = bestRadius;
  out.boundaryLevel = bestLevel;
  out.boundaryPoint = std::move(bestPoint);
  out.boundReachable = true;
  out.method = *method;
}

std::span<const double> CompiledProblem::resolveOrigin(
    const AnalysisInstance& instance) const {
  const std::span<const double> origin =
      instance.origin.empty() ? std::span<const double>(parameter_.origin)
                              : instance.origin;
  ROBUST_REQUIRE(origin.size() == dim_,
                 "CompiledProblem: instance origin size does not match the "
                 "perturbation dimension");
  const std::size_t n = features_.size();
  ROBUST_REQUIRE(instance.constants.empty() || instance.constants.size() == n,
                 "CompiledProblem: instance constants must have one entry "
                 "per feature");
  ROBUST_REQUIRE(instance.scales.empty() || instance.scales.size() == n,
                 "CompiledProblem: instance scales must have one entry per "
                 "feature");
  return origin;
}

const RobustnessReport& CompiledProblem::evaluate(
    const AnalysisInstance& instance, EvalWorkspace& workspace) const {
  const std::span<const double> origin = resolveOrigin(instance);
  const std::size_t n = features_.size();

  RobustnessReport& report = workspace.report_;
  if (!constraints_.empty() && !originFeasible(origin)) {
    // The operating point itself breaks a hard constraint: the mapping is
    // inadmissible, reported as a first-class outcome rather than radii.
    reportInfeasibleOrigin(origin, report);
    return report;
  }
  report.radii.resize(n);
  report.metric = kInf;
  report.bindingFeature = 0;
  report.floored = false;
  report.infeasibleOrigin = false;
  for (std::size_t i = 0; i < n; ++i) {
    const bool affine = rowIndex_[i] != kNoRow;
    const double constant =
        affine && !instance.constants.empty() ? instance.constants[i]
                                              : constants_[i];
    const double scale =
        affine && !instance.scales.empty() ? instance.scales[i] : 1.0;
    radiusOfInto(i, origin, constant, scale, report.radii[i], workspace);
    if (report.radii[i].radius < report.metric) {
      report.metric = report.radii[i].radius;
      report.bindingFeature = i;
    }
  }
  if (parameter_.discrete && std::isfinite(report.metric)) {
    // Section 3.2: a discrete parameter's metric should not be fractional.
    report.metric = std::floor(report.metric);
    report.floored = true;
  }
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kEvals = obs::counterId("core.evaluations");
    static const obs::MetricId kRows = obs::counterId("core.rows_evaluated");
    static const obs::MetricId kBinding = obs::gaugeId("core.binding_feature");
    obs::addCounter(kEvals);
    obs::addCounter(kRows, n);
    obs::setGauge(kBinding,
                  static_cast<std::int64_t>(report.bindingFeature));
  }
  return report;
}

RobustnessReport CompiledProblem::evaluate(
    const AnalysisInstance& instance) const {
  EvalWorkspace workspace;
  return evaluate(instance, workspace);
}

RobustnessReport CompiledProblem::evaluate() const {
  return evaluate(AnalysisInstance{});
}

RadiusReport CompiledProblem::radiusOf(std::size_t index) const {
  ROBUST_REQUIRE(index < features_.size(),
                 "CompiledProblem: feature index out of range");
  EvalWorkspace workspace;
  RadiusReport out;
  if (!constraints_.empty() && !originFeasible(parameter_.origin)) {
    out.feature = features_[index].name;
    out.radius = 0.0;
    out.boundaryPoint = parameter_.origin;
    out.boundaryLevel = 0.0;
    out.boundReachable = true;
    out.method = kInfeasibleOrigin;
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kInfeasible =
          obs::counterId("core.feasibility.infeasible_origin");
      obs::addCounter(kInfeasible);
    }
    return out;
  }
  radiusOfInto(index, parameter_.origin, constants_[index], 1.0, out,
               workspace);
  return out;
}

void CompiledProblem::analyzeBatch(std::span<const AnalysisInstance> instances,
                                   std::span<RobustnessReport> out,
                                   std::size_t threads) const {
  ROBUST_REQUIRE(out.size() == instances.size(),
                 "analyzeBatch: output size does not match instance count");
  const std::size_t n = instances.size();
  if (n == 0) {
    return;
  }
  const obs::Span span("core.analyzeBatch");
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kBatches = obs::counterId("core.batches");
    obs::addCounter(kBatches);
  }
  std::size_t workers = threads == 0 ? defaultThreadCount() : threads;
  workers = std::min(workers, n);
  if (workers <= 1) {
    EvalWorkspace workspace;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = evaluate(instances[i], workspace);
    }
    return;
  }
  // One contiguous block per worker; each block reuses its own workspace
  // and writes disjoint output slots, so results are independent of the
  // worker count.
  std::vector<EvalWorkspace> workspaces(workers);
  parallelFor(
      0, workers,
      [&](std::size_t b) {
        const std::size_t lo = n * b / workers;
        const std::size_t hi = n * (b + 1) / workers;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = evaluate(instances[i], workspaces[b]);
        }
      },
      workers);
}

std::vector<RobustnessReport> CompiledProblem::analyzeBatch(
    std::span<const AnalysisInstance> instances, std::size_t threads) const {
  std::vector<RobustnessReport> out(instances.size());
  analyzeBatch(instances, out, threads);
  return out;
}

MetricResult CompiledProblem::metricFromDots(const AnalysisInstance& instance,
                                             std::span<const double> origin,
                                             const double* dots, bool prune,
                                             MetricWorkspace& workspace) const {
  const std::size_t n = features_.size();

  MetricResult result;
  result.metric = kInf;
  result.bindingFeature = 0;
  result.floored = false;
  std::size_t pruned = 0;
  std::size_t affineRows = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = rowIndex_[i];
    double radius;
    if (row == kNoRow) {
      // Callable lane: same per-feature fallback the full path runs.
      radiusOfInto(i, origin, constants_[i], 1.0, workspace.scratch_,
                   workspace.full_);
      radius = workspace.scratch_.radius;
    } else {
      ++affineRows;
      const double constant =
          !instance.constants.empty() ? instance.constants[i] : constants_[i];
      const double scale =
          !instance.scales.empty() ? instance.scales[i] : 1.0;
      double atOrigin;
      double deff;
      if (scale == 1.0) {
        atOrigin = dots[row] + constant;
        deff = effDual_[row];
      } else {
        ROBUST_REQUIRE(scale > 0.0,
                       "CompiledProblem: instance scales must be positive");
        // f(pi) = s*(w.pi) + c and ||s*w||_dual = s*||w||_dual: the lane
        // rescales the two scalars instead of the whole row.
        atOrigin = scale * dots[row] + constant;
        deff = scale * effDual_[row];
      }
      const auto& bounds = features_[i].bounds;
      const bool withinMin = !bounds.min || atOrigin >= *bounds.min;
      const bool withinMax = !bounds.max || atOrigin <= *bounds.max;
      if (!withinMin || !withinMax) {
        radius = 0.0;  // violated at the operating point
      } else {
        ROBUST_REQUIRE(
            deff > 0.0,
            "analytic radius: impact does not depend on the parameter");
        // Nearest-level gap; dividing by the same positive denominator is
        // monotone, so min(g)/d carries the exact bits of min(g/d).
        double gap = kInf;
        if (bounds.min) {
          gap = std::fabs(atOrigin - *bounds.min);
        }
        if (bounds.max) {
          const double g2 = std::fabs(atOrigin - *bounds.max);
          if (g2 < gap) {
            gap = g2;
          }
        }
        if (prune && result.metric < kInf &&
            gap > result.metric * deff * (1.0 + 1e-9)) {
          // The margin absorbs the rounding of the multiply chain, so a
          // skipped row provably has radius strictly above the incumbent:
          // it can never win the strict-< selection below. Skipping it
          // changes no result bits.
          ++pruned;
          continue;
        }
        radius = gap / deff;
      }
    }
    if (radius < result.metric) {
      result.metric = radius;
      result.bindingFeature = i;
    }
  }
  if (parameter_.discrete && std::isfinite(result.metric)) {
    result.metric = std::floor(result.metric);
    result.floored = true;
  }
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kScalar =
        obs::counterId("core.kernel.dispatch.scalar");
    static const obs::MetricId kAvx2 =
        obs::counterId("core.kernel.dispatch.avx2");
    static const obs::MetricId kSkipped =
        obs::counterId("core.prune.rows_skipped");
    static const obs::MetricId kEffectiveness =
        obs::gaugeId("core.prune.effectiveness");
    obs::addCounter(num::simd::activeTarget() == num::simd::Target::Avx2
                        ? kAvx2
                        : kScalar);
    obs::addCounter(kSkipped, pruned);
    if (affineRows > 0) {
      obs::setGauge(kEffectiveness,
                    static_cast<std::int64_t>(pruned * 100 / affineRows));
    }
  }
  return result;
}

MetricResult CompiledProblem::evaluateMetric(const AnalysisInstance& instance,
                                             MetricWorkspace& workspace,
                                             bool prune) const {
  const std::span<const double> origin = resolveOrigin(instance);
  if (!fastSolver_) {
    // Iterative/Monte-Carlo solver configurations stay on the full lane.
    const RobustnessReport& full = evaluate(instance, workspace.full_);
    return MetricResult{full.metric, full.bindingFeature, full.floored};
  }
  const std::size_t rows = rowCount();
  const double* dots;
  if (instance.origin.empty()) {
    dots = dotOrigin_.data();
  } else {
    workspace.dots_.resize(rows);
    num::simd::dotRowsBlocked(weights_.data(), rows, origin,
                              workspace.dots_.data());
    dots = workspace.dots_.data();
  }
  return metricFromDots(instance, origin, dots, prune, workspace);
}

MetricResult CompiledProblem::evaluateMetric(
    const AnalysisInstance& instance) const {
  MetricWorkspace workspace;
  return evaluateMetric(instance, workspace);
}

MetricResult CompiledProblem::evaluateMetric() const {
  return evaluateMetric(AnalysisInstance{});
}

void CompiledProblem::metricBlock(std::span<const AnalysisInstance> instances,
                                  std::span<MetricResult> out, std::size_t lo,
                                  std::size_t hi, MetricWorkspace& ws,
                                  bool prune) const {
  // Tile geometry: a stripe of kRowChunk rows is consumed by every
  // instance of a kTile-wide tile before the next stripe streams in, so
  // the batch walks the weight matrix once per tile instead of once per
  // instance (cache blocking over instances x rows).
  constexpr std::size_t kTile = 8;
  constexpr std::size_t kRowChunk = 64;
  const std::size_t rows = rowCount();

  if (!fastSolver_) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = evaluateMetric(instances[i], ws, prune);
    }
    return;
  }
  for (std::size_t t0 = lo; t0 < hi; t0 += kTile) {
    const std::size_t t1 = std::min(hi, t0 + kTile);
    ws.batchDots_.resize((t1 - t0) * rows);
    for (std::size_t r0 = 0; r0 < rows; r0 += kRowChunk) {
      const std::size_t chunk = std::min(rows, r0 + kRowChunk) - r0;
      for (std::size_t i = t0; i < t1; ++i) {
        if (instances[i].origin.empty()) {
          continue;  // compiled default: dots cached at compile time
        }
        const std::span<const double> origin = resolveOrigin(instances[i]);
        num::simd::dotRowsBlocked(weights_.data() + r0 * dim_, chunk, origin,
                                  ws.batchDots_.data() + (i - t0) * rows +
                                      r0);
      }
    }
    for (std::size_t i = t0; i < t1; ++i) {
      const std::span<const double> origin = resolveOrigin(instances[i]);
      const double* dots = instances[i].origin.empty()
                               ? dotOrigin_.data()
                               : ws.batchDots_.data() + (i - t0) * rows;
      out[i] = metricFromDots(instances[i], origin, dots, prune, ws);
    }
  }
}

void CompiledProblem::analyzeBatchMetric(
    std::span<const AnalysisInstance> instances, std::span<MetricResult> out,
    std::size_t threads, bool prune) const {
  ROBUST_REQUIRE(out.size() == instances.size(),
                 "analyzeBatchMetric: output size does not match instance "
                 "count");
  const std::size_t n = instances.size();
  if (n == 0) {
    return;
  }
  const obs::Span span("core.analyzeBatchMetric");

  std::size_t workers = threads == 0 ? defaultThreadCount() : threads;
  workers = std::min(workers, n);
  if (workers <= 1) {
    MetricWorkspace workspace;
    metricBlock(instances, out, 0, n, workspace, prune);
    return;
  }
  // One contiguous block per worker, same partition as analyzeBatch:
  // results are independent of the worker count.
  std::vector<MetricWorkspace> workspaces(workers);
  parallelFor(
      0, workers,
      [&](std::size_t b) {
        metricBlock(instances, out, n * b / workers, n * (b + 1) / workers,
                    workspaces[b], prune);
      },
      workers);
}

std::vector<MetricResult> CompiledProblem::analyzeBatchMetric(
    std::span<const AnalysisInstance> instances, std::size_t threads,
    bool prune) const {
  std::vector<MetricResult> out(instances.size());
  analyzeBatchMetric(instances, out, threads, prune);
  return out;
}

}  // namespace robust::core
