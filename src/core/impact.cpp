#include "robust/core/impact.hpp"

#include "robust/util/error.hpp"

namespace robust::core {

ImpactFunction ImpactFunction::affine(num::Vec weights, double constant) {
  ROBUST_REQUIRE(!weights.empty(), "ImpactFunction::affine: empty weights");
  ImpactFunction impact;
  impact.affine_ = Affine{std::move(weights), constant};
  return impact;
}

ImpactFunction ImpactFunction::callable(num::ScalarField f,
                                        num::GradientField gradient) {
  ROBUST_REQUIRE(static_cast<bool>(f), "ImpactFunction::callable: null f");
  ImpactFunction impact;
  impact.fn_ = std::move(f);
  impact.gradient_ = std::move(gradient);
  return impact;
}

double ImpactFunction::evaluate(std::span<const double> x) const {
  if (affine_) {
    return num::dot(affine_->weights, x) + affine_->constant;
  }
  return fn_(x);
}

const num::Vec& ImpactFunction::weights() const {
  ROBUST_REQUIRE(affine_.has_value(), "ImpactFunction: not affine");
  return affine_->weights;
}

double ImpactFunction::constant() const {
  ROBUST_REQUIRE(affine_.has_value(), "ImpactFunction: not affine");
  return affine_->constant;
}

num::ScalarField ImpactFunction::field() const {
  if (affine_) {
    const Affine a = *affine_;  // copy into the closure; self-contained
    return [a](std::span<const double> x) {
      return num::dot(a.weights, x) + a.constant;
    };
  }
  return fn_;
}

num::GradientField ImpactFunction::gradientField() const {
  if (affine_) {
    const num::Vec w = affine_->weights;
    return [w](std::span<const double>) { return w; };
  }
  return gradient_;
}

std::optional<std::size_t> ImpactFunction::dimension() const {
  if (affine_) {
    return affine_->weights.size();
  }
  return std::nullopt;
}

}  // namespace robust::core
