#include "robust/core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/numeric/hyperplane.hpp"
#include "robust/util/error.hpp"

namespace robust::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dual norm of the hyperplane normal for the closed-form distance
/// |a.x0 - c| / ||a||_dual (dual of L2 is L2, of L1 is LInf, of LInf is L1;
/// the dual of the w-weighted Euclidean norm is the 1/w-weighted one).
double dualNorm(std::span<const double> a, NormKind norm,
                std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::normInf(a);
    case NormKind::L2:
      return num::norm2(a);
    case NormKind::LInf:
      return num::norm1(a);
    case NormKind::Weighted: {
      double s = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        s += a[i] * a[i] / weights[i];
      }
      return std::sqrt(s);
    }
  }
  return 0.0;  // unreachable
}

/// Nearest boundary point on the hyperplane {x : a.x = c} from x0 under the
/// chosen norm (the minimizer achieving the dual-norm distance).
num::Vec nearestOnHyperplane(std::span<const double> a, double c,
                             std::span<const double> x0, NormKind norm,
                             std::span<const double> weights) {
  const double gap = c - num::dot(a, x0);
  num::Vec out(x0.begin(), x0.end());
  switch (norm) {
    case NormKind::L2: {
      const double n2 = num::dot(a, a);
      num::axpy(gap / n2, a, out);
      break;
    }
    case NormKind::L1: {
      // Move only the coordinate with the largest |a_k|.
      std::size_t k = 0;
      for (std::size_t i = 1; i < a.size(); ++i) {
        if (std::fabs(a[i]) > std::fabs(a[k])) {
          k = i;
        }
      }
      out[k] += gap / a[k];
      break;
    }
    case NormKind::LInf: {
      // Move every coordinate by the same magnitude, signed with a_i.
      const double t = gap / num::norm1(a);
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += (a[i] > 0.0 ? 1.0 : (a[i] < 0.0 ? -1.0 : 0.0)) * t;
      }
      break;
    }
    case NormKind::Weighted: {
      // Lagrange: d_i = nu * a_i / w_i with nu = gap / sum(a_i^2 / w_i).
      double denom = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        denom += a[i] * a[i] / weights[i];
      }
      const double nu = gap / denom;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out[i] += nu * a[i] / weights[i];
      }
      break;
    }
  }
  return out;
}

double vectorNorm(std::span<const double> v, NormKind norm,
                  std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::norm1(v);
    case NormKind::L2:
      return num::norm2(v);
    case NormKind::LInf:
      return num::normInf(v);
    case NormKind::Weighted:
      return num::weightedNorm2(v, weights);
  }
  return 0.0;  // unreachable
}

}  // namespace

std::string toString(NormKind norm) {
  switch (norm) {
    case NormKind::L1:
      return "l1";
    case NormKind::L2:
      return "l2";
    case NormKind::LInf:
      return "linf";
    case NormKind::Weighted:
      return "weighted";
  }
  return "?";
}

RobustnessAnalyzer::RobustnessAnalyzer(
    std::vector<PerformanceFeature> features, PerturbationParameter parameter,
    AnalyzerOptions options)
    : features_(std::move(features)),
      parameter_(std::move(parameter)),
      options_(options) {
  ROBUST_REQUIRE(!features_.empty(),
                 "RobustnessAnalyzer: at least one feature required");
  ROBUST_REQUIRE(!parameter_.origin.empty(),
                 "RobustnessAnalyzer: empty perturbation origin");
  if (options_.norm == NormKind::Weighted) {
    ROBUST_REQUIRE(options_.normWeights.size() == parameter_.origin.size(),
                   "RobustnessAnalyzer: weighted norm requires one weight "
                   "per perturbation component");
    for (double w : options_.normWeights) {
      ROBUST_REQUIRE(w > 0.0,
                     "RobustnessAnalyzer: norm weights must be positive");
    }
  }
  for (const auto& f : features_) {
    const auto dim = f.impact.dimension();
    ROBUST_REQUIRE(!dim || *dim == parameter_.origin.size(),
                   "RobustnessAnalyzer: impact dimension of '" + f.name +
                       "' does not match the perturbation parameter");
    ROBUST_REQUIRE(f.bounds.min || f.bounds.max,
                   "RobustnessAnalyzer: feature '" + f.name +
                       "' has no tolerable-variation bound");
  }
}

RadiusReport RobustnessAnalyzer::radiusAgainstLevel(
    const PerformanceFeature& f, double level) const {
  RadiusReport report;
  report.feature = f.name;
  report.boundaryLevel = level;

  SolverKind solver = options_.solver;
  if (solver == SolverKind::Auto) {
    solver = f.impact.isAffine() ? SolverKind::Analytic : SolverKind::KktNewton;
  }

  if (solver == SolverKind::Analytic) {
    ROBUST_REQUIRE(f.impact.isAffine(),
                   "analytic radius requires an affine impact function");
    const auto& w = f.impact.weights();
    const double c = level - f.impact.constant();
    const double denom = dualNorm(w, options_.norm, options_.normWeights);
    ROBUST_REQUIRE(denom > 0.0,
                   "analytic radius: impact does not depend on the parameter");
    report.radius =
        std::fabs(num::dot(w, parameter_.origin) - c) / denom;
    report.boundaryPoint = nearestOnHyperplane(
        w, c, parameter_.origin, options_.norm, options_.normWeights);
    report.method = "analytic-" + toString(options_.norm);
    return report;
  }

  if (solver == SolverKind::MonteCarlo) {
    num::NearestPointProblem problem;
    problem.g = f.impact.field();
    problem.gradient = f.impact.gradientField();
    problem.level = level;
    problem.origin = parameter_.origin;
    try {
      // For non-Euclidean norms the estimator minimizes the requested norm
      // directly (each sampled crossing is measured in that norm).
      num::ScalarField measure;
      if (options_.norm != NormKind::L2) {
        const NormKind norm = options_.norm;
        const num::Vec weights = options_.normWeights;
        measure = [norm, weights](std::span<const double> d) {
          return vectorNorm(d, norm, weights);
        };
      }
      auto mc =
          num::monteCarloRadius(problem, options_.solverOptions, measure);
      report.radius = mc.distance;
      report.boundaryPoint = std::move(mc.point);
      report.method = mc.method;
    } catch (const ConvergenceError&) {
      report.radius = kInf;
      report.boundReachable = false;
      report.method = "monte-carlo";
    }
    return report;
  }

  ROBUST_REQUIRE(options_.norm == NormKind::L2,
                 "iterative radius solvers support the l2 norm only");
  num::NearestPointProblem problem;
  problem.g = f.impact.field();
  problem.gradient = f.impact.gradientField();
  problem.level = level;
  problem.origin = parameter_.origin;
  try {
    num::NearestPointResult solved;
    switch (solver) {
      case SolverKind::KktNewton:
        solved = num::solveNearestPoint(problem, options_.solverOptions);
        break;
      case SolverKind::RaySearch:
        solved = num::raySearch(problem, options_.solverOptions);
        break;
      default:
        ROBUST_REQUIRE(false, "unexpected solver kind");
    }
    report.radius = solved.distance;
    report.boundaryPoint = std::move(solved.point);
    report.method = std::move(solved.method);
  } catch (const ConvergenceError&) {
    report.radius = kInf;
    report.boundReachable = false;
    report.method = "unreachable";
  }
  return report;
}

RadiusReport RobustnessAnalyzer::radiusOf(std::size_t index) const {
  ROBUST_REQUIRE(index < features_.size(),
                 "RobustnessAnalyzer: feature index out of range");
  const PerformanceFeature& f = features_[index];

  const double atOrigin = f.impact.evaluate(parameter_.origin);
  if (!f.bounds.contains(atOrigin)) {
    // Already violated at the operating point: zero robustness.
    RadiusReport report;
    report.feature = f.name;
    report.radius = 0.0;
    report.boundaryPoint = parameter_.origin;
    report.boundaryLevel = atOrigin;
    report.method = "violated-at-origin";
    return report;
  }

  RadiusReport best;
  best.feature = f.name;
  best.radius = kInf;
  best.boundReachable = false;
  for (const auto& level : {f.bounds.min, f.bounds.max}) {
    if (!level) {
      continue;
    }
    RadiusReport candidate = radiusAgainstLevel(f, *level);
    if (candidate.radius < best.radius) {
      best = std::move(candidate);
    }
  }
  return best;
}

RobustnessReport RobustnessAnalyzer::analyze() const {
  RobustnessReport report;
  report.radii.reserve(features_.size());
  report.metric = kInf;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    report.radii.push_back(radiusOf(i));
    if (report.radii.back().radius < report.metric) {
      report.metric = report.radii.back().radius;
      report.bindingFeature = i;
    }
  }
  if (parameter_.discrete && std::isfinite(report.metric)) {
    // Section 3.2: a discrete parameter's metric should not be fractional.
    report.metric = std::floor(report.metric);
    report.floored = true;
  }
  return report;
}

double combinedRobustness(std::span<const RobustnessReport> reports) {
  ROBUST_REQUIRE(!reports.empty(), "combinedRobustness: no reports");
  double metric = kInf;
  for (const auto& r : reports) {
    metric = std::min(metric, r.metric);
  }
  return metric;
}

}  // namespace robust::core
