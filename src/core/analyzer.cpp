#include "robust/core/analyzer.hpp"

#include <algorithm>
#include <limits>

#include "robust/util/error.hpp"

namespace robust::core {

std::string toString(NormKind norm) {
  switch (norm) {
    case NormKind::L1:
      return "l1";
    case NormKind::L2:
      return "l2";
    case NormKind::LInf:
      return "linf";
    case NormKind::Weighted:
      return "weighted";
  }
  return "?";
}

double combinedRobustness(std::span<const RobustnessReport> reports) {
  ROBUST_REQUIRE(!reports.empty(), "combinedRobustness: no reports");
  double metric = std::numeric_limits<double>::infinity();
  for (const auto& r : reports) {
    metric = std::min(metric, r.metric);
  }
  return metric;
}

}  // namespace robust::core
