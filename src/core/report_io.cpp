#include "robust/core/report_io.hpp"

#include <cmath>
#include <ostream>

#include "robust/util/table.hpp"

namespace robust::core {

namespace {

std::string vecString(const num::Vec& v, int precision) {
  std::string out = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += formatDouble(v[i], precision);
    if (i + 1 < v.size()) {
      out += ", ";
    }
  }
  return out + ")";
}

}  // namespace

void printReport(std::ostream& os, const RobustnessReport& report,
                 const PerturbationParameter& parameter,
                 const ReportPrintOptions& options) {
  TablePrinter table(options.showBoundaryPoints
                         ? std::vector<std::string>{"feature", "radius",
                                                    "method", "pi*"}
                         : std::vector<std::string>{"feature", "radius",
                                                    "method"});
  const std::size_t limit =
      options.maxRadii == 0 ? report.radii.size() : options.maxRadii;
  std::size_t shown = 0;
  bool elided = false;
  for (std::size_t i = 0; i < report.radii.size(); ++i) {
    const bool isBinding = i == report.bindingFeature;
    if (shown >= limit && !isBinding) {
      elided = true;
      continue;
    }
    const auto& r = report.radii[i];
    std::vector<std::string> row = {
        r.feature + (isBinding ? " *" : ""),
        std::isfinite(r.radius) ? formatDouble(r.radius, options.precision)
                                : "inf",
        r.method};
    if (options.showBoundaryPoints) {
      row.push_back(r.boundaryPoint.empty()
                        ? "-"
                        : vecString(r.boundaryPoint, options.precision));
    }
    table.addRow(std::move(row));
    ++shown;
  }
  table.print(os);
  if (elided) {
    os << "(" << report.radii.size() - shown
       << " more features elided; * marks the binding feature)\n";
  }
  os << "robustness metric rho = "
     << formatDouble(report.metric, options.precision);
  if (!parameter.units.empty()) {
    os << ' ' << parameter.units;
  }
  if (report.floored) {
    os << " (floored: discrete parameter)";
  }
  if (report.infeasibleOrigin) {
    os << " (origin violates a hard perturbation constraint)";
  }
  os << "\nbinding feature: "
     << report.radii[report.bindingFeature].feature << ", boundary point "
     << vecString(report.radii[report.bindingFeature].boundaryPoint,
                  options.precision)
     << "\n";
}

}  // namespace robust::core
