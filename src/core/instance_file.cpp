#include "robust/core/instance_file.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <ostream>

#include "robust/util/error.hpp"

namespace robust::core {

namespace {

using util::RejectCategory;

std::uint32_t readU32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t readU64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void writeU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void writeU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

InstanceFileHeader parseInstanceFileHeader(std::span<const std::byte> header,
                                           std::uint64_t totalBytes,
                                           const util::Diagnostics& diag,
                                           const InputPolicy& policy) {
  if (header.size() < kInstanceFileHeaderBytes) {
    diag.failInput(RejectCategory::Truncated,
                   "file holds " + std::to_string(header.size()) +
                       " bytes, the instance-file header needs " +
                       std::to_string(kInstanceFileHeaderBytes));
  }
  if (std::memcmp(header.data(), kInstanceFileMagic,
                  kInstanceFileMagicBytes) != 0) {
    diag.failInput(RejectCategory::Format,
                   "bad magic: not a robust binary instance file");
  }
  const std::uint32_t version = readU32(header.data() + 8);
  if (version != kInstanceFileVersion) {
    diag.failInput(RejectCategory::Format,
                   "unsupported format version " + std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(kInstanceFileVersion) + ")");
  }
  const std::uint32_t flags = readU32(header.data() + 12);
  if (flags != 0) {
    diag.failInput(RejectCategory::Format,
                   "unknown flags " + std::to_string(flags) +
                       " (version 1 defines none)");
  }
  for (std::size_t i = 32; i < kInstanceFileHeaderBytes; ++i) {
    if (header[i] != std::byte{0}) {
      diag.failInput(RejectCategory::Format,
                     "reserved header bytes are not zero");
    }
  }

  InstanceFileHeader out;
  out.dim = readU64(header.data() + 16);
  out.instances = readU64(header.data() + 24);
  if (out.dim == 0) {
    diag.failInput(RejectCategory::Domain,
                   "declared dimension is zero");
  }
  if (out.dim > policy.maxDeclaredCount) {
    diag.failInput(RejectCategory::Domain,
                   "declared dimension " + std::to_string(out.dim) +
                       " exceeds the policy cap " +
                       std::to_string(policy.maxDeclaredCount));
  }

  // Shape/size cross-check with division (never an overflowing multiply):
  // a corrupt count must produce a diagnostic, not an allocation.
  const std::uint64_t avail = totalBytes - kInstanceFileHeaderBytes;
  const std::uint64_t perInstance = out.dim * sizeof(double);
  if (out.instances > avail / perInstance) {
    diag.failInput(RejectCategory::Truncated,
                   "file ends mid-payload: " + std::to_string(avail) +
                       " payload bytes cannot hold the declared " +
                       std::to_string(out.instances) + " instances of " +
                       std::to_string(perInstance) + " bytes");
  }
  if (out.instances * perInstance != avail) {
    diag.failInput(
        RejectCategory::Structure,
        std::to_string(avail - out.instances * perInstance) +
            " trailing bytes after the declared payload");
  }
  return out;
}

InstanceFileWriter::InstanceFileWriter(std::ostream& out, std::uint64_t dim,
                                       const InputPolicy& policy,
                                       std::string source)
    : out_(out), diag_(std::move(source)), policy_(policy), dim_(dim) {
  ROBUST_REQUIRE(dim_ > 0, "instance file: dimension must be positive");
  out_.write(kInstanceFileMagic,
             static_cast<std::streamsize>(kInstanceFileMagicBytes));
  writeU32(out_, kInstanceFileVersion);
  writeU32(out_, 0);  // flags
  writeU64(out_, dim_);
  writeU64(out_, 0);  // instance count, patched by finish()
  const char zeros[32] = {};
  out_.write(zeros, sizeof(zeros));
  if (!out_) {
    throw std::runtime_error("instance file: header write failed");
  }
}

void InstanceFileWriter::append(std::span<const double> values) {
  ROBUST_REQUIRE(!finished_, "instance file: append() after finish()");
  ROBUST_REQUIRE(values.size() == dim_,
                 "instance file: instance size does not match the declared "
                 "dimension");
  if (policy_.requireFinite) {
    for (std::size_t k = 0; k < values.size(); ++k) {
      if (!std::isfinite(values[k])) {
        diag_.fail(RejectCategory::Domain,
                   static_cast<std::size_t>(instances_) + 1, k + 1,
                   "value " + util::formatValue(values[k]) +
                       " is not finite");
      }
    }
  }
  out_.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!out_) {
    throw std::runtime_error("instance file: payload write failed");
  }
  ++instances_;
}

void InstanceFileWriter::appendBatch(std::span<const double> values) {
  ROBUST_REQUIRE(values.size() % dim_ == 0,
                 "instance file: batch size must be a multiple of the "
                 "dimension");
  for (std::size_t i = 0; i < values.size(); i += dim_) {
    append(values.subspan(i, static_cast<std::size_t>(dim_)));
  }
}

void InstanceFileWriter::finish() {
  ROBUST_REQUIRE(!finished_, "instance file: finish() called twice");
  finished_ = true;
  out_.seekp(24);
  writeU64(out_, instances_);
  out_.seekp(0, std::ios_base::end);
  out_.flush();
  if (!out_) {
    throw std::runtime_error(
        "instance file: header patch failed (stream not seekable?)");
  }
}

InstanceData loadInstanceData(std::span<const std::byte> bytes,
                              const util::Diagnostics& diag,
                              const InputPolicy& policy) {
  InstanceData out;
  out.header = parseInstanceFileHeader(bytes, bytes.size(), diag, policy);
  const std::size_t total =
      static_cast<std::size_t>(out.header.instances * out.header.dim);
  out.values.resize(total);
  if (total > 0) {
    std::memcpy(out.values.data(), bytes.data() + kInstanceFileHeaderBytes,
                total * sizeof(double));
  }
  if (policy.requireFinite) {
    const std::size_t dim = static_cast<std::size_t>(out.header.dim);
    for (std::size_t i = 0; i < total; ++i) {
      if (!std::isfinite(out.values[i])) {
        diag.fail(RejectCategory::Domain, i / dim + 1, i % dim + 1,
                  "payload value " + util::formatValue(out.values[i]) +
                      " is not finite");
      }
    }
  }
  return out;
}

InstanceData loadInstanceData(const std::string& bytes,
                              const util::Diagnostics& diag,
                              const InputPolicy& policy) {
  return loadInstanceData(
      std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()),
      diag, policy);
}

InstanceFileReader::InstanceFileReader(const std::string& path,
                                       const InputPolicy& policy)
    : file_(path) {
  const util::Diagnostics diag(path);
  if (file_.size() < kInstanceFileHeaderBytes) {
    diag.failInput(RejectCategory::Truncated,
                   "file holds " + std::to_string(file_.size()) +
                       " bytes, the instance-file header needs " +
                       std::to_string(kInstanceFileHeaderBytes));
  }
  util::MmapFile::View view;
  file_.view(0, kInstanceFileHeaderBytes, view);
  header_ = parseInstanceFileHeader({view.data(), view.size()}, file_.size(),
                                    diag, policy);
}

std::span<const double> InstanceFileReader::read(
    std::uint64_t first, std::uint64_t count,
    util::MmapFile::View& view) const {
  ROBUST_REQUIRE(first <= header_.instances &&
                     count <= header_.instances - first,
                 "instance file: read range leaves the file");
  const std::uint64_t doubles = count * header_.dim;
  ROBUST_REQUIRE(doubles <= std::numeric_limits<std::size_t>::max() /
                                sizeof(double),
                 "instance file: shard too large for this address space");
  file_.view(kInstanceFileHeaderBytes +
                 first * header_.dim * sizeof(double),
             static_cast<std::size_t>(doubles) * sizeof(double), view);
  return {reinterpret_cast<const double*>(view.data()),
          static_cast<std::size_t>(doubles)};
}

}  // namespace robust::core
