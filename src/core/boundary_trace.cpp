#include "robust/core/boundary_trace.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::core {

std::vector<BoundarySample> traceBoundary2D(
    const RobustnessAnalyzer& analyzer, std::size_t featureIndex,
    const BoundaryTraceOptions& options) {
  ROBUST_REQUIRE(featureIndex < analyzer.featureCount(),
                 "traceBoundary2D: feature index out of range");
  ROBUST_REQUIRE(analyzer.parameter().origin.size() == 2,
                 "traceBoundary2D: requires a 2-D perturbation parameter");
  ROBUST_REQUIRE(options.rays >= 4, "traceBoundary2D: need at least 4 rays");

  const PerformanceFeature& feature = analyzer.features()[featureIndex];
  const double level = feature.bounds.max ? *feature.bounds.max
                                          : *feature.bounds.min;
  const num::ScalarField g = feature.impact.field();
  const num::Vec& origin = analyzer.parameter().origin;

  std::vector<BoundarySample> samples;
  samples.reserve(static_cast<std::size_t>(options.rays));
  for (int r = 0; r < options.rays; ++r) {
    const double angle = 2.0 * 3.141592653589793 * static_cast<double>(r) /
                         static_cast<double>(options.rays);
    const num::Vec direction = {std::cos(angle), std::sin(angle)};
    const auto t = num::crossingAlongRay(g, level, origin, direction,
                                         options.searchLimit);
    if (!t) {
      continue;  // this ray never reaches the boundary
    }
    BoundarySample sample;
    sample.angle = angle;
    sample.point = origin;
    num::axpy(*t, direction, sample.point);
    sample.distance = *t;
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace robust::core
