#include "robust/core/feature.hpp"

#include "robust/util/error.hpp"

namespace robust::core {

ToleranceBounds ToleranceBounds::between(double lo, double hi) {
  ROBUST_REQUIRE(lo <= hi, "ToleranceBounds: lo must not exceed hi");
  return ToleranceBounds{lo, hi};
}

}  // namespace robust::core
