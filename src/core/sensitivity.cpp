#include "robust/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "robust/util/error.hpp"

namespace robust::core {

SensitivityReport sensitivityOf(const RadiusReport& radius,
                                const PerturbationParameter& parameter) {
  ROBUST_REQUIRE(std::isfinite(radius.radius),
                 "sensitivityOf: radius is not finite (no boundary)");
  ROBUST_REQUIRE(radius.boundaryPoint.size() == parameter.origin.size(),
                 "sensitivityOf: boundary point does not match parameter");

  SensitivityReport report;
  report.feature = radius.feature;
  report.direction = num::sub(radius.boundaryPoint, parameter.origin);
  const double norm = num::norm2(report.direction);
  if (norm > 0.0) {
    report.direction = num::scale(report.direction, 1.0 / norm);
  }
  report.ranking.resize(parameter.origin.size());
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    report.ranking[i] = i;
  }
  std::stable_sort(report.ranking.begin(), report.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::fabs(report.direction[a]) >
                            std::fabs(report.direction[b]);
                   });
  return report;
}

SensitivityReport bindingSensitivity(const RobustnessReport& report,
                                     const PerturbationParameter& parameter) {
  ROBUST_REQUIRE(!report.radii.empty(), "bindingSensitivity: empty report");
  return sensitivityOf(report.radii[report.bindingFeature], parameter);
}

}  // namespace robust::core
