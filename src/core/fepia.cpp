#include "robust/core/fepia.hpp"

#include "robust/util/error.hpp"

namespace robust::core {

FepiaBuilder::FepiaBuilder(std::string requirement)
    : requirement_(std::move(requirement)) {}

FepiaBuilder& FepiaBuilder::perturbation(std::string name, num::Vec origin,
                                         bool discrete, std::string units) {
  ROBUST_REQUIRE(!haveParameter_,
                 "FepiaBuilder: perturbation parameter already set (the "
                 "single-parameter analyzer handles one pi_j; analyze each "
                 "parameter separately and combine with combinedRobustness, "
                 "or describe a joint space with subspace())");
  ROBUST_REQUIRE(subspaces_.empty(),
                 "FepiaBuilder: perturbation() and subspace() are mutually "
                 "exclusive");
  parameter_ =
      PerturbationParameter{std::move(name), std::move(origin), discrete,
                            std::move(units)};
  haveParameter_ = true;
  return *this;
}

FepiaBuilder& FepiaBuilder::subspace(PerturbationSubspace sub) {
  ROBUST_REQUIRE(!haveParameter_,
                 "FepiaBuilder: perturbation() and subspace() are mutually "
                 "exclusive");
  subspaces_.push_back(std::move(sub));
  return *this;
}

FepiaBuilder& FepiaBuilder::constraint(LinearConstraint constraint) {
  constraints_.push_back(std::move(constraint));
  return *this;
}

FepiaBuilder& FepiaBuilder::feature(std::string name, ImpactFunction impact,
                                    ToleranceBounds bounds) {
  features_.push_back(
      PerformanceFeature{std::move(name), std::move(impact), bounds});
  return *this;
}

FepiaBuilder& FepiaBuilder::affineFeature(std::string name, num::Vec weights,
                                          double constant,
                                          ToleranceBounds bounds) {
  return feature(std::move(name),
                 ImpactFunction::affine(std::move(weights), constant), bounds);
}

FepiaBuilder& FepiaBuilder::options(AnalyzerOptions options) {
  options_ = options;
  return *this;
}

ProblemSpec FepiaBuilder::spec() {
  ROBUST_REQUIRE(!built_, "FepiaBuilder: build() already called");
  ROBUST_REQUIRE(haveParameter_ || !subspaces_.empty(),
                 "FepiaBuilder: step 2 (perturbation parameter) missing");
  ROBUST_REQUIRE(!features_.empty(),
                 "FepiaBuilder: steps 1/3 (performance features) missing");
  built_ = true;
  ProblemSpec spec;
  spec.features = std::move(features_);
  spec.parameter = std::move(parameter_);
  spec.options = options_;
  spec.subspaces = std::move(subspaces_);
  spec.constraints = std::move(constraints_);
  return spec;
}

CompiledProblem FepiaBuilder::compile() {
  return CompiledProblem::compile(spec());
}

RobustnessAnalyzer FepiaBuilder::build() {
  return RobustnessAnalyzer(spec());
}

}  // namespace robust::core
