#include "robust/core/fepia.hpp"

#include "robust/util/error.hpp"

namespace robust::core {

FepiaBuilder::FepiaBuilder(std::string requirement)
    : requirement_(std::move(requirement)) {}

FepiaBuilder& FepiaBuilder::perturbation(std::string name, num::Vec origin,
                                         bool discrete, std::string units) {
  ROBUST_REQUIRE(!haveParameter_,
                 "FepiaBuilder: perturbation parameter already set (the "
                 "single-parameter analyzer handles one pi_j; analyze each "
                 "parameter separately and combine with combinedRobustness)");
  parameter_ =
      PerturbationParameter{std::move(name), std::move(origin), discrete,
                            std::move(units)};
  haveParameter_ = true;
  return *this;
}

FepiaBuilder& FepiaBuilder::feature(std::string name, ImpactFunction impact,
                                    ToleranceBounds bounds) {
  features_.push_back(
      PerformanceFeature{std::move(name), std::move(impact), bounds});
  return *this;
}

FepiaBuilder& FepiaBuilder::affineFeature(std::string name, num::Vec weights,
                                          double constant,
                                          ToleranceBounds bounds) {
  return feature(std::move(name),
                 ImpactFunction::affine(std::move(weights), constant), bounds);
}

FepiaBuilder& FepiaBuilder::options(AnalyzerOptions options) {
  options_ = options;
  return *this;
}

ProblemSpec FepiaBuilder::spec() {
  ROBUST_REQUIRE(!built_, "FepiaBuilder: build() already called");
  ROBUST_REQUIRE(haveParameter_,
                 "FepiaBuilder: step 2 (perturbation parameter) missing");
  ROBUST_REQUIRE(!features_.empty(),
                 "FepiaBuilder: steps 1/3 (performance features) missing");
  built_ = true;
  return ProblemSpec{std::move(features_), std::move(parameter_), options_};
}

CompiledProblem FepiaBuilder::compile() {
  return CompiledProblem::compile(spec());
}

RobustnessAnalyzer FepiaBuilder::build() {
  ProblemSpec s = spec();
  return RobustnessAnalyzer(std::move(s.features), std::move(s.parameter),
                            std::move(s.options));
}

}  // namespace robust::core
