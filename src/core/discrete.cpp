#include "robust/core/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "robust/util/error.hpp"

namespace robust::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool violatesAny(const CompiledProblem& problem,
                 std::span<const double> point) {
  for (const auto& f : problem.features()) {
    if (!f.bounds.contains(f.impact.evaluate(point))) {
      return true;
    }
  }
  return false;
}

/// Recursively enumerates integer offsets d with ||d||_2 <= limit, calling
/// visit(point) for each lattice point origin + d. Returns false when the
/// point budget is exhausted.
bool enumerateShell(const num::Vec& origin, double limit, std::size_t dim,
                    num::Vec& point, double usedSq, std::size_t& budget,
                    const std::function<bool(const num::Vec&)>& visit) {
  if (dim == origin.size()) {
    if (budget == 0) {
      return false;
    }
    --budget;
    return visit(point);
  }
  const double remaining = limit * limit - usedSq;
  const auto span = static_cast<long>(std::floor(std::sqrt(
      std::max(0.0, remaining))));
  for (long step = -span; step <= span; ++step) {
    const auto offset = static_cast<double>(step);
    point[dim] = origin[dim] + offset;
    if (!enumerateShell(origin, limit, dim + 1, point,
                        usedSq + offset * offset, budget, visit)) {
      return false;
    }
  }
  return true;
}

}  // namespace

DiscreteRadiusBounds discreteRadiusBounds(const CompiledProblem& problem,
                                          const DiscreteOptions& options) {
  const auto& parameter = problem.parameter();
  ROBUST_REQUIRE(parameter.discrete,
                 "discreteRadiusBounds: parameter is not discrete");
  for (double v : parameter.origin) {
    ROBUST_REQUIRE(v == std::floor(v),
                   "discreteRadiusBounds: origin is not a lattice point");
  }
  ROBUST_REQUIRE(options.neighborhoodRadius >= 1,
                 "discreteRadiusBounds: neighborhoodRadius must be >= 1");

  DiscreteRadiusBounds bounds;
  bounds.upper = kInf;

  // Continuous analysis: the unfloored minimum radius is the lower bound,
  // and each feature's boundary point seeds the certificate search.
  const std::size_t n = parameter.origin.size();
  std::vector<num::Vec> boundaryPoints;
  bounds.lower = kInf;
  for (std::size_t i = 0; i < problem.featureCount(); ++i) {
    const RadiusReport radius = problem.radiusOf(i);
    if (std::isfinite(radius.radius)) {
      bounds.lower = std::min(bounds.lower, radius.radius);
      if (!radius.boundaryPoint.empty()) {
        boundaryPoints.push_back(radius.boundaryPoint);
      }
    }
  }
  ROBUST_REQUIRE(std::isfinite(bounds.lower),
                 "discreteRadiusBounds: no reachable boundary");

  auto consider = [&](const num::Vec& candidate) {
    const double dist = num::distance2(candidate, parameter.origin);
    if (dist < bounds.upper && violatesAny(problem, candidate)) {
      bounds.upper = dist;
      bounds.violatingPoint = candidate;
    }
  };

  // Cheap certificate search: integer boxes around each continuous boundary
  // point (a violating lattice point usually sits just outside the
  // boundary there).
  for (const auto& boundary : boundaryPoints) {
    num::Vec base(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = std::round(boundary[i]);
    }
    // Enumerate the (2k+1)^n box around the rounded boundary point.
    num::Vec candidate(base);
    std::vector<int> offset(n, -options.neighborhoodRadius);
    for (;;) {
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = base[i] + offset[i];
      }
      consider(candidate);
      std::size_t d = 0;
      while (d < n && ++offset[d] > options.neighborhoodRadius) {
        offset[d] = -options.neighborhoodRadius;
        ++d;
      }
      if (d == n) {
        break;
      }
    }
  }

  // Exhaustive shell enumeration for small radii: proves minimality.
  if (bounds.lower <= options.exhaustiveLimit) {
    // Any violating lattice point within this limit would have been at
    // distance >= lower; the rounded-outward boundary point guarantees one
    // exists within lower + sqrt(n), so the search is conclusive whenever
    // the budget suffices.
    const double limit =
        std::min(bounds.upper,
                 bounds.lower + std::sqrt(static_cast<double>(n)) + 1.0);
    std::size_t budget = options.maxPoints;
    num::Vec point(n);
    double bestExhaustive = kInf;
    num::Vec bestPoint;
    const bool completed = enumerateShell(
        parameter.origin, limit, 0, point, 0.0, budget,
        [&](const num::Vec& candidate) {
          const double dist = num::distance2(candidate, parameter.origin);
          if (dist < bestExhaustive && dist > 0.0 &&
              violatesAny(problem, candidate)) {
            bestExhaustive = dist;
            bestPoint = candidate;
          }
          return true;
        });
    if (completed) {
      if (bestExhaustive < bounds.upper) {
        bounds.upper = bestExhaustive;
        bounds.violatingPoint = std::move(bestPoint);
      }
      // Exact whenever the enumeration covered every point closer than the
      // reported upper bound.
      bounds.exact = bounds.upper <= limit;
    }
  }
  return bounds;
}

DiscreteRadiusBounds discreteRadiusBounds(const RobustnessAnalyzer& analyzer,
                                          const DiscreteOptions& options) {
  return discreteRadiusBounds(analyzer.compiled(), options);
}

}  // namespace robust::core
