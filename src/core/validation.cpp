#include "robust/core/validation.hpp"

#include <cmath>

#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"

namespace robust::core {

namespace {

double normOf(std::span<const double> d, NormKind norm,
              std::span<const double> weights) {
  switch (norm) {
    case NormKind::L1:
      return num::norm1(d);
    case NormKind::L2:
      return num::norm2(d);
    case NormKind::LInf:
      return num::normInf(d);
    case NormKind::Weighted:
      return num::weightedNorm2(d, weights);
  }
  return 0.0;  // unreachable
}

/// Uniform direction on the unit sphere of the requested norm, scaled so its
/// norm equals `radius * u^(1/n)`-style interior coverage. For validation we
/// only need coverage of the ball, not exact uniformity in volume.
num::Vec randomDisplacement(Pcg32& rng, std::size_t n, double radius,
                            NormKind norm, std::span<const double> weights) {
  num::Vec d(n);
  for (auto& di : d) {
    di = rnd::standardNormal(rng);
  }
  const double length = normOf(d, norm, weights);
  if (length <= 0.0) {
    return num::Vec(n, 0.0);
  }
  // Scale to a uniformly-drawn norm in (0, radius].
  const double target = radius * rng.nextDoubleOpen();
  return num::scale(d, target / length);
}

}  // namespace

ValidationResult validateRadius(const RobustnessAnalyzer& analyzer,
                                double radius,
                                const ValidationOptions& options) {
  ROBUST_REQUIRE(radius >= 0.0, "validateRadius: negative radius");
  ROBUST_REQUIRE(options.samples > 0, "validateRadius: samples must be > 0");
  ROBUST_REQUIRE(options.norm != NormKind::Weighted ||
                     options.normWeights.size() ==
                         analyzer.parameter().origin.size(),
                 "validateRadius: weighted norm requires one weight per "
                 "perturbation component");

  const auto& origin = analyzer.parameter().origin;
  const std::size_t n = origin.size();
  Pcg32 rng(options.seed, /*stream=*/43);

  ValidationResult result;
  auto allWithinBounds = [&](std::span<const double> point) {
    for (const auto& f : analyzer.features()) {
      if (!f.bounds.contains(f.impact.evaluate(point))) {
        return false;
      }
    }
    return true;
  };

  for (int s = 0; s < options.samples; ++s) {
    // Inside the claimed ball.
    num::Vec inside = num::add(
        origin,
        randomDisplacement(rng, n, radius, options.norm,
                           options.normWeights));
    ++result.samplesInside;
    if (!allWithinBounds(inside)) {
      ++result.violationsInside;
    }
    // Just beyond the claimed ball (tightness probe): fixed norm
    // radius * margin, not uniformly shrunk.
    num::Vec d =
        randomDisplacement(rng, n, 1.0, options.norm, options.normWeights);
    const double length = normOf(d, options.norm, options.normWeights);
    if (length > 0.0) {
      num::Vec beyond = num::add(
          origin,
          num::scale(d, radius * options.boundaryMargin / length));
      ++result.samplesAtBoundary;
      if (!allWithinBounds(beyond)) {
        ++result.violationsAtBoundary;
      }
    }
  }
  return result;
}


std::vector<ViolationCurvePoint> violationProbabilityCurve(
    const RobustnessAnalyzer& analyzer, std::span<const double> radii,
    const ValidationOptions& options) {
  ROBUST_REQUIRE(options.samples > 0,
                 "violationProbabilityCurve: samples must be > 0");
  const auto& origin = analyzer.parameter().origin;
  const std::size_t n = origin.size();
  Pcg32 rng(options.seed, /*stream=*/53);

  auto allWithinBounds = [&](std::span<const double> point) {
    for (const auto& f : analyzer.features()) {
      if (!f.bounds.contains(f.impact.evaluate(point))) {
        return false;
      }
    }
    return true;
  };

  std::vector<ViolationCurvePoint> curve;
  curve.reserve(radii.size());
  for (double radius : radii) {
    ROBUST_REQUIRE(radius >= 0.0,
                   "violationProbabilityCurve: negative radius");
    int violations = 0;
    for (int s = 0; s < options.samples; ++s) {
      num::Vec d =
          randomDisplacement(rng, n, 1.0, options.norm, options.normWeights);
      const double length = normOf(d, options.norm, options.normWeights);
      if (length <= 0.0) {
        continue;
      }
      const num::Vec point =
          num::add(origin, num::scale(d, radius / length));
      violations += !allWithinBounds(point);
    }
    curve.push_back(ViolationCurvePoint{
        radius,
        static_cast<double>(violations) / static_cast<double>(options.samples)});
  }
  return curve;
}

}  // namespace robust::core
