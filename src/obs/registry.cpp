// Metrics registry + trace collector. One translation unit because the two
// share the per-thread shard machinery: a thread's counter slots and its
// trace buffer live in the same shard, registered once and retired together
// when the thread exits.
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "robust/obs/flight.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"

namespace robust::obs {

namespace detail {
std::atomic<bool> gEnabled{false};
}  // namespace detail

namespace {

// Capacities sized for labeled series too: each distinct (name, label
// key, label value) consumes one slot, so the tables leave headroom for a
// realistic tenant population on top of the unlabeled instrumentation.
constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;
/// Per-thread span cap: traces stay bounded on pathological runs; overflow
/// is counted, not silently ignored.
constexpr std::size_t kMaxSpansPerThread = 1u << 16;
/// Retired flight rings kept for post-mortem dumps; beyond this the oldest
/// retired thread's ring is dropped (the recorder stays bounded even under
/// thread churn).
constexpr std::size_t kMaxRetiredFlightThreads = 64;

struct TraceEvent {
  const char* name;       ///< string literal, never owned
  std::int64_t startNs;
  std::int64_t durationNs;
};

struct FlightRecord {
  const char* name;          ///< string literal, never owned
  std::uint64_t requestId;   ///< wire correlation id (0 = none)
  std::int64_t startNs;
  std::int64_t durationNs;
  std::uint64_t seq;         ///< per-thread record ordinal (ring order)
};

/// One thread's private slots. Owner-incremented with relaxed atomics; the
/// snapshot reads the same atomics, so concurrent merge is race-free. The
/// trace buffer is the only mutex-guarded part (append vs export), and it
/// is touched only while recording is enabled.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> histCount{};
  std::array<std::atomic<std::uint64_t>, kMaxHistograms> histSum{};
  std::array<std::array<std::atomic<std::uint64_t>, kHistogramBuckets>,
             kMaxHistograms>
      histBuckets{};
  std::uint32_t tid = 0;
  std::mutex traceMutex;
  std::vector<TraceEvent> trace;
  std::uint64_t droppedSpans = 0;
  // Flight-recorder ring: owner-written under flightMutex (uncontended in
  // steady state — a dump is the only other reader), overwriting the
  // oldest record once full.
  std::mutex flightMutex;
  std::vector<FlightRecord> flight;
  std::size_t flightNext = 0;   ///< overwrite cursor once the ring is full
  std::uint64_t flightSeq = 0;  ///< next record ordinal
};

/// Totals of threads that have exited (their shards are freed on exit, so
/// their contributions are folded in here, under the registry mutex).
struct RetiredTotals {
  std::array<std::uint64_t, kMaxCounters> counters{};
  std::array<std::uint64_t, kMaxHistograms> histCount{};
  std::array<std::uint64_t, kMaxHistograms> histSum{};
  std::array<std::array<std::uint64_t, kHistogramBuckets>, kMaxHistograms>
      histBuckets{};
  std::uint64_t droppedSpans = 0;
};

struct RetiredTrace {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct RetiredFlight {
  std::uint32_t tid = 0;
  std::vector<FlightRecord> records;  ///< ring order already restored
};

struct Registry {
  std::mutex mutex;  ///< names, shard list, retired totals — never recording
  std::vector<std::string> counterNames;
  std::vector<std::string> gaugeNames;
  std::vector<std::string> histogramNames;
  std::vector<Shard*> shards;
  RetiredTotals retired;
  std::vector<RetiredTrace> retiredTrace;
  std::vector<RetiredFlight> retiredFlight;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
  std::uint32_t nextTid = 1;
};

std::atomic<std::size_t> gFlightCapacity{kDefaultFlightCapacity};

/// A ring's records in chronological (sequence) order: the slice after the
/// overwrite cursor is oldest.
std::vector<FlightRecord> unrollRing(const Shard& shard) {
  std::vector<FlightRecord> out;
  out.reserve(shard.flight.size());
  const std::size_t n = shard.flight.size();
  const std::size_t cursor = shard.flightNext < n ? shard.flightNext : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(shard.flight[(cursor + i) % n]);
  }
  return out;
}

/// Leaked singleton: thread_local shard handles retire through it during
/// thread (and process) teardown, so it must never be destroyed.
Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

void retireShard(Shard* shard) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    reg.retired.counters[i] +=
        shard->counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    reg.retired.histCount[i] +=
        shard->histCount[i].load(std::memory_order_relaxed);
    reg.retired.histSum[i] += shard->histSum[i].load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      reg.retired.histBuckets[i][b] +=
          shard->histBuckets[i][b].load(std::memory_order_relaxed);
    }
  }
  reg.retired.droppedSpans += shard->droppedSpans;
  if (!shard->trace.empty()) {
    reg.retiredTrace.push_back(
        RetiredTrace{shard->tid, std::move(shard->trace)});
  }
  if (!shard->flight.empty()) {
    if (reg.retiredFlight.size() >= kMaxRetiredFlightThreads) {
      reg.retiredFlight.erase(reg.retiredFlight.begin());
    }
    reg.retiredFlight.push_back(RetiredFlight{shard->tid, unrollRing(*shard)});
  }
  reg.shards.erase(std::find(reg.shards.begin(), reg.shards.end(), shard));
  delete shard;
}

struct ShardHandle {
  Shard* shard = nullptr;
  ~ShardHandle() {
    if (shard != nullptr) {
      retireShard(shard);
    }
  }
};

Shard& localShard() {
  thread_local ShardHandle handle;
  if (handle.shard == nullptr) {
    auto* shard = new Shard;
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    shard->tid = reg.nextTid++;
    reg.shards.push_back(shard);
    handle.shard = shard;
  }
  return *handle.shard;
}

/// Registration body; the registry mutex must already be held. Returns
/// nullopt when the table is full and `name` is not already present.
std::optional<MetricId> tryRegisterLocked(std::vector<std::string>& names,
                                          std::size_t capacity,
                                          std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return static_cast<MetricId>(i);
    }
  }
  if (names.size() >= capacity) {
    return std::nullopt;
  }
  names.emplace_back(name);
  return static_cast<MetricId>(names.size() - 1);
}

MetricId registerName(std::vector<std::string>& names, std::size_t capacity,
                      std::string_view name, const char* kind) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (const auto id = tryRegisterLocked(names, capacity, name)) {
    return *id;
  }
  throw std::runtime_error(std::string("obs: ") + kind +
                           " capacity exhausted registering '" +
                           std::string(name) + "'");
}

MetricId registerLabeled(std::vector<std::string>& names, std::size_t capacity,
                         std::string_view name, std::string_view key,
                         std::string_view value, const char* kind) {
  const std::string overflowName = labeledMetricName(name, key, "_other_");
  const std::string seriesName = labeledMetricName(name, key, value);
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  // Reserve the overflow bucket before the specific series: once it
  // exists, a full table degrades hostile label cardinality to
  // aggregation under "_other_" instead of an error on the labeled path.
  const auto overflow = tryRegisterLocked(names, capacity, overflowName);
  if (!overflow) {
    throw std::runtime_error(std::string("obs: ") + kind +
                             " capacity exhausted registering '" +
                             overflowName + "'");
  }
  if (const auto id = tryRegisterLocked(names, capacity, seriesName)) {
    return *id;
  }
  return *overflow;
}

std::int64_t steadyNowNanos() noexcept;

std::int64_t (*gClockOverride)() noexcept = nullptr;

/// Environment bootstrap, run once before main: ROBUST_OBS turns recording
/// on; ROBUST_TRACE=<path> additionally writes the trace at process exit.
bool envTruthy(const char* value) {
  return value != nullptr &&
         (std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
          std::strcmp(value, "true") == 0);
}

std::string& tracePathAtExit() {
  static std::string path;
  return path;
}

void writeTraceAtExit() {
  const std::string& path = tracePathAtExit();
  if (path.empty()) {
    return;
  }
  try {
    writeTrace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: failed to write ROBUST_TRACE file: %s\n",
                 e.what());
  }
}

const bool gEnvInitialized = [] {
  if (envTruthy(std::getenv("ROBUST_OBS"))) {
    detail::gEnabled.store(true, std::memory_order_relaxed);
  }
  if (const char* trace = std::getenv("ROBUST_TRACE");
      trace != nullptr && *trace != '\0') {
    detail::gEnabled.store(true, std::memory_order_relaxed);
    tracePathAtExit() = trace;
    std::atexit(writeTraceAtExit);
  }
  if (const char* flight = std::getenv("ROBUST_FLIGHT");
      flight != nullptr && *flight != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(flight, &end, 10);
    if (end != nullptr && *end == '\0') {
      gFlightCapacity.store(static_cast<std::size_t>(parsed),
                            std::memory_order_relaxed);
    }
  }
  return true;
}();

}  // namespace

void setEnabled(bool on) noexcept {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

MetricId counterId(std::string_view name) {
  return registerName(registry().counterNames, kMaxCounters, name, "counter");
}

MetricId gaugeId(std::string_view name) {
  return registerName(registry().gaugeNames, kMaxGauges, name, "gauge");
}

MetricId histogramId(std::string_view name) {
  return registerName(registry().histogramNames, kMaxHistograms, name,
                      "histogram");
}

std::string labeledMetricName(std::string_view name, std::string_view labelKey,
                              std::string_view labelValue) {
  std::string out;
  out.reserve(name.size() + labelKey.size() + labelValue.size() + 3);
  out.append(name);
  out.push_back('{');
  out.append(labelKey);
  out.push_back('=');
  out.append(labelValue);
  out.push_back('}');
  return out;
}

MetricId counterId(std::string_view name, std::string_view labelKey,
                   std::string_view labelValue) {
  return registerLabeled(registry().counterNames, kMaxCounters, name, labelKey,
                         labelValue, "counter");
}

MetricId histogramId(std::string_view name, std::string_view labelKey,
                     std::string_view labelValue) {
  return registerLabeled(registry().histogramNames, kMaxHistograms, name,
                         labelKey, labelValue, "histogram");
}

void addCounter(MetricId id, std::uint64_t delta) noexcept {
  localShard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void setGauge(MetricId id, std::int64_t value) noexcept {
  registry().gauges[id].store(value, std::memory_order_relaxed);
}

void maxGauge(MetricId id, std::int64_t value) noexcept {
  std::atomic<std::int64_t>& gauge = registry().gauges[id];
  std::int64_t seen = gauge.load(std::memory_order_relaxed);
  while (value > seen &&
         !gauge.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::size_t latencyBucketIndex(std::int64_t nanos) noexcept {
  const std::uint64_t magnitude =
      nanos <= 0 ? 0 : static_cast<std::uint64_t>(nanos);
  return std::min<std::size_t>(
      kHistogramBuckets - 1,
      static_cast<std::size_t>(magnitude == 0 ? 0
                                              : std::bit_width(magnitude)));
}

std::int64_t latencyQuantileUpperNanos(std::span<const std::uint64_t> buckets,
                                       std::uint64_t count, double q) noexcept {
  if (count == 0 || buckets.empty()) {
    return 0;
  }
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(count)));
  target = std::max<std::uint64_t>(1, std::min(target, count));
  // Every edge is specified: when `count` exceeds the bucket sum (a
  // trimmed or otherwise degenerate digest), the answer is the bound of
  // the last OCCUPIED bucket — never the bound of a trailing empty slot —
  // and a digest whose buckets are all zero answers 0, exactly like an
  // empty digest.
  std::uint64_t seen = 0;
  std::size_t bucket = 0;
  bool found = false;
  std::size_t lastOccupied = 0;
  bool anyOccupied = false;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] > 0) {
      lastOccupied = b;
      anyOccupied = true;
    }
    seen += buckets[b];
    if (!found && seen >= target) {
      bucket = b;
      found = true;
    }
  }
  if (!found) {
    if (!anyOccupied) {
      return 0;
    }
    bucket = lastOccupied;
  }
  return bucket == 0
             ? 0
             : static_cast<std::int64_t>((std::uint64_t{1} << bucket) - 1);
}

void recordLatency(MetricId id, std::int64_t nanos) noexcept {
  Shard& shard = localShard();
  const std::uint64_t magnitude =
      nanos <= 0 ? 0 : static_cast<std::uint64_t>(nanos);
  const std::size_t bucket = latencyBucketIndex(nanos);
  shard.histCount[id].fetch_add(1, std::memory_order_relaxed);
  shard.histSum[id].fetch_add(magnitude, std::memory_order_relaxed);
  shard.histBuckets[id][bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) {
      return g.value;
    }
  }
  return 0;
}

const HistogramValue* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

MetricsSnapshot snapshotMetrics() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  MetricsSnapshot snapshot;

  snapshot.counters.resize(reg.counterNames.size());
  for (std::size_t i = 0; i < reg.counterNames.size(); ++i) {
    snapshot.counters[i].name = reg.counterNames[i];
    std::uint64_t total = reg.retired.counters[i];
    for (const Shard* shard : reg.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters[i].value = total;
  }

  snapshot.gauges.resize(reg.gaugeNames.size());
  for (std::size_t i = 0; i < reg.gaugeNames.size(); ++i) {
    snapshot.gauges[i].name = reg.gaugeNames[i];
    snapshot.gauges[i].value = reg.gauges[i].load(std::memory_order_relaxed);
  }

  snapshot.histograms.resize(reg.histogramNames.size());
  for (std::size_t i = 0; i < reg.histogramNames.size(); ++i) {
    HistogramValue& h = snapshot.histograms[i];
    h.name = reg.histogramNames[i];
    h.count = reg.retired.histCount[i];
    h.sumNanos = reg.retired.histSum[i];
    h.buckets.assign(reg.retired.histBuckets[i].begin(),
                     reg.retired.histBuckets[i].end());
    for (const Shard* shard : reg.shards) {
      h.count += shard->histCount[i].load(std::memory_order_relaxed);
      h.sumNanos += shard->histSum[i].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] +=
            shard->histBuckets[i][b].load(std::memory_order_relaxed);
      }
    }
  }
  return snapshot;
}

void resetMetrics() noexcept {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.retired = RetiredTotals{};
  for (std::size_t i = 0; i < kMaxGauges; ++i) {
    reg.gauges[i].store(0, std::memory_order_relaxed);
  }
  for (Shard* shard : reg.shards) {
    for (auto& c : shard->counters) {
      c.store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      shard->histCount[i].store(0, std::memory_order_relaxed);
      shard->histSum[i].store(0, std::memory_order_relaxed);
      for (auto& b : shard->histBuckets[i]) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
}

// --- trace ---------------------------------------------------------------

namespace {

std::int64_t steadyNowNanos() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// JSON string escaping for span names (names are literals, but stay safe).
void writeEscaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

namespace detail {

std::int64_t nowNanos() noexcept {
  if (gClockOverride != nullptr) {
    return gClockOverride();
  }
  return steadyNowNanos();
}

void setClockForTesting(std::int64_t (*fn)() noexcept) noexcept {
  gClockOverride = fn;
}

void recordSpan(const char* name, std::int64_t startNanos) noexcept {
  const std::int64_t duration = nowNanos() - startNanos;
  Shard& shard = localShard();
  std::lock_guard lock(shard.traceMutex);
  if (shard.trace.size() >= kMaxSpansPerThread) {
    ++shard.droppedSpans;
    return;
  }
  shard.trace.push_back(TraceEvent{name, startNanos, duration});
}

}  // namespace detail

void writeTrace(std::ostream& out) {
  // Collect (tid, events) pairs from live shards and retired threads, then
  // remap tids to dense 1-based ids ordered by first span start so exports
  // are deterministic under a test clock.
  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };
  std::vector<ThreadEvents> threads;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    for (Shard* shard : reg.shards) {
      std::lock_guard traceLock(shard->traceMutex);
      if (!shard->trace.empty()) {
        threads.push_back(ThreadEvents{shard->tid, shard->trace});
      }
    }
    for (const RetiredTrace& retired : reg.retiredTrace) {
      threads.push_back(ThreadEvents{retired.tid, retired.events});
    }
  }
  for (ThreadEvents& t : threads) {
    std::sort(t.events.begin(), t.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.startNs < b.startNs ||
                       (a.startNs == b.startNs && a.durationNs > b.durationNs);
              });
  }
  std::sort(threads.begin(), threads.end(),
            [](const ThreadEvents& a, const ThreadEvents& b) {
              const std::int64_t sa =
                  a.events.empty() ? INT64_MAX : a.events.front().startNs;
              const std::int64_t sb =
                  b.events.empty() ? INT64_MAX : b.events.front().startNs;
              return sa < sb || (sa == sb && a.tid < b.tid);
            });

  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (std::size_t t = 0; t < threads.size(); ++t) {
    for (const TraceEvent& e : threads[t].events) {
      if (!first) {
        out << ',';
      }
      first = false;
      out << "{\"name\":\"";
      writeEscaped(out, e.name);
      out << "\",\"cat\":\"robust\",\"ph\":\"X\",\"pid\":1,\"tid\":" << (t + 1);
      // Microseconds with nanosecond precision: deterministic formatting.
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(e.startNs / 1000),
                    static_cast<long long>(e.startNs % 1000));
      out << ",\"ts\":" << buf;
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(e.durationNs / 1000),
                    static_cast<long long>(e.durationNs % 1000));
      out << ",\"dur\":" << buf << '}';
    }
  }
  out << "]}\n";
}

void writeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot open trace file '" + path + "'");
  }
  writeTrace(out);
}

void clearTrace() noexcept {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.retiredTrace.clear();
  reg.retired.droppedSpans = 0;
  for (Shard* shard : reg.shards) {
    std::lock_guard traceLock(shard->traceMutex);
    shard->trace.clear();
    shard->droppedSpans = 0;
  }
}

std::uint64_t droppedSpanCount() noexcept {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::uint64_t total = reg.retired.droppedSpans;
  for (Shard* shard : reg.shards) {
    std::lock_guard traceLock(shard->traceMutex);
    total += shard->droppedSpans;
  }
  return total;
}

// --- flight recorder -----------------------------------------------------

std::size_t flightCapacity() noexcept {
  return gFlightCapacity.load(std::memory_order_relaxed);
}

void setFlightCapacity(std::size_t perThreadRecords) noexcept {
  gFlightCapacity.store(perThreadRecords, std::memory_order_relaxed);
}

void recordFlight(const char* name, std::uint64_t requestId,
                  std::int64_t startNanos,
                  std::int64_t durationNanos) noexcept {
  const std::size_t cap = gFlightCapacity.load(std::memory_order_relaxed);
  if (cap == 0) {
    return;
  }
  Shard& shard = localShard();
  std::lock_guard lock(shard.flightMutex);
  if (shard.flight.size() > cap) {
    // Capacity was lowered since this ring filled: keep the newest `cap`
    // records and restore plain ring order. Happens at most once per
    // thread per capacity change.
    std::vector<FlightRecord> ordered = unrollRing(shard);
    shard.flight.assign(ordered.end() - static_cast<std::ptrdiff_t>(cap),
                        ordered.end());
    shard.flightNext = 0;
  }
  const FlightRecord rec{name, requestId, startNanos, durationNanos,
                         shard.flightSeq++};
  if (shard.flight.size() < cap) {
    shard.flight.push_back(rec);
  } else {
    shard.flight[shard.flightNext] = rec;
    shard.flightNext = (shard.flightNext + 1) % shard.flight.size();
  }
}

void writeFlightTrace(std::ostream& out) {
  // Same deterministic shape as writeTrace(): records sorted by (start,
  // sequence) within a thread, threads by (first start, tid), tids
  // remapped densely — plus the requestId as an event arg.
  struct ThreadRecords {
    std::uint32_t tid = 0;
    std::vector<FlightRecord> records;
  };
  std::vector<ThreadRecords> threads;
  {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    for (Shard* shard : reg.shards) {
      std::lock_guard flightLock(shard->flightMutex);
      if (!shard->flight.empty()) {
        threads.push_back(ThreadRecords{shard->tid, unrollRing(*shard)});
      }
    }
    for (const RetiredFlight& retired : reg.retiredFlight) {
      threads.push_back(ThreadRecords{retired.tid, retired.records});
    }
  }
  for (ThreadRecords& t : threads) {
    std::sort(t.records.begin(), t.records.end(),
              [](const FlightRecord& a, const FlightRecord& b) {
                return a.startNs < b.startNs ||
                       (a.startNs == b.startNs && a.seq < b.seq);
              });
  }
  std::sort(threads.begin(), threads.end(),
            [](const ThreadRecords& a, const ThreadRecords& b) {
              const std::int64_t sa =
                  a.records.empty() ? INT64_MAX : a.records.front().startNs;
              const std::int64_t sb =
                  b.records.empty() ? INT64_MAX : b.records.front().startNs;
              return sa < sb || (sa == sb && a.tid < b.tid);
            });

  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (std::size_t t = 0; t < threads.size(); ++t) {
    for (const FlightRecord& r : threads[t].records) {
      if (!first) {
        out << ',';
      }
      first = false;
      out << "{\"name\":\"";
      writeEscaped(out, r.name);
      out << "\",\"cat\":\"flight\",\"ph\":\"X\",\"pid\":1,\"tid\":" << (t + 1);
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(r.startNs / 1000),
                    static_cast<long long>(r.startNs % 1000));
      out << ",\"ts\":" << buf;
      std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                    static_cast<long long>(r.durationNs / 1000),
                    static_cast<long long>(r.durationNs % 1000));
      out << ",\"dur\":" << buf;
      out << ",\"args\":{\"requestId\":" << r.requestId << "}}";
    }
  }
  out << "]}\n";
}

void writeFlightTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot open flight trace file '" + path +
                             "'");
  }
  writeFlightTrace(out);
}

void clearFlight() noexcept {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.retiredFlight.clear();
  for (Shard* shard : reg.shards) {
    std::lock_guard flightLock(shard->flightMutex);
    shard->flight.clear();
    shard->flightNext = 0;
  }
}

std::uint64_t flightRecordCount() noexcept {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::uint64_t total = 0;
  for (const RetiredFlight& retired : reg.retiredFlight) {
    total += retired.records.size();
  }
  for (Shard* shard : reg.shards) {
    std::lock_guard flightLock(shard->flightMutex);
    total += shard->flight.size();
  }
  return total;
}

}  // namespace robust::obs
