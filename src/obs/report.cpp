#include "robust/obs/report.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace robust::obs {

namespace {

void writeEscaped(std::ostream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void writeString(std::ostream& out, std::string_view s) {
  out << '"';
  writeEscaped(out, s);
  out << '"';
}

/// %.17g — the same rendering the savers use, so values round-trip.
void writeNumber(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

void writeRunReport(std::ostream& out, const RunReport& report) {
  out << "{\n  \"schema\": ";
  writeString(out, kRunReportSchemaName);
  out << ",\n  \"schema_version\": " << kRunReportSchemaVersion;
  out << ",\n  \"tool\": ";
  writeString(out, report.tool);

  out << ",\n  \"info\": {";
  for (std::size_t i = 0; i < report.info.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    writeString(out, report.info[i].first);
    out << ": ";
    writeString(out, report.info[i].second);
  }
  out << (report.info.empty() ? "}" : "\n  }");

  out << ",\n  \"benchmarks\": [";
  for (std::size_t i = 0; i < report.benchmarks.size(); ++i) {
    const BenchResult& b = report.benchmarks[i];
    out << (i == 0 ? "\n    " : ",\n    ");
    out << "{\"name\": ";
    writeString(out, b.name);
    out << ", \"value\": ";
    writeNumber(out, b.value);
    out << ", \"unit\": ";
    writeString(out, b.unit);
    out << '}';
  }
  out << (report.benchmarks.empty() ? "]" : "\n  ]");

  if (report.includeMetrics) {
    const MetricsSnapshot snapshot = snapshotMetrics();
    out << ",\n  \"metrics\": {\n    \"counters\": {";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
      out << (i == 0 ? "\n      " : ",\n      ");
      writeString(out, snapshot.counters[i].name);
      out << ": " << snapshot.counters[i].value;
    }
    out << (snapshot.counters.empty() ? "}" : "\n    }");

    out << ",\n    \"gauges\": {";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
      out << (i == 0 ? "\n      " : ",\n      ");
      writeString(out, snapshot.gauges[i].name);
      out << ": " << snapshot.gauges[i].value;
    }
    out << (snapshot.gauges.empty() ? "}" : "\n    }");

    out << ",\n    \"histograms\": {";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
      const HistogramValue& h = snapshot.histograms[i];
      out << (i == 0 ? "\n      " : ",\n      ");
      writeString(out, h.name);
      out << ": {\"count\": " << h.count << ", \"sum_nanos\": " << h.sumNanos
          << ", \"buckets\": [";
      // Trim trailing zero buckets: compact and diff-friendly.
      std::size_t last = h.buckets.size();
      while (last > 0 && h.buckets[last - 1] == 0) {
        --last;
      }
      for (std::size_t b = 0; b < last; ++b) {
        out << (b == 0 ? "" : ", ") << h.buckets[b];
      }
      out << "]}";
    }
    out << (snapshot.histograms.empty() ? "}" : "\n    }");
    out << "\n  }";
  }
  for (std::size_t i = 0; i < report.sections.size(); ++i) {
    const auto& [key, json] = report.sections[i];
    for (const char* reserved : {"schema", "schema_version", "tool", "info",
                                 "benchmarks", "metrics"}) {
      if (key == reserved) {
        throw std::invalid_argument(
            "obs: run-report section key '" + key +
            "' collides with a built-in section");
      }
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (report.sections[j].first == key) {
        throw std::invalid_argument("obs: duplicate run-report section key '" +
                                    key + "'");
      }
    }
    out << ",\n  ";
    writeString(out, key);
    out << ": " << json;
  }
  out << "\n}\n";
}

void writeRunReport(const std::string& path, const RunReport& report) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("obs: cannot open run-report file '" + path +
                             "'");
  }
  writeRunReport(out, report);
}

}  // namespace robust::obs
