#include "robust/obs/json_lite.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace robust::obs::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json: " + message + " at byte " +
                             std::to_string(pos_));
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWhitespace();
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parseString();
        return v;
      }
      case 't':
        if (consumeLiteral("true")) {
          Value v;
          v.kind = Value::Kind::Bool;
          v.boolean = true;
          return v;
        }
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) {
          Value v;
          v.kind = Value::Kind::Bool;
          v.boolean = false;
          return v;
        }
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) {
          return Value{};
        }
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parseValue());
      skipWhitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          // strtol would accept signs and leading whitespace; require four
          // literal hex digits so "\u-12f" is rejected, not mangled.
          unsigned code = 0;
          for (std::size_t i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            if (std::isxdigit(static_cast<unsigned char>(h)) == 0) {
              fail("invalid \\u escape");
            }
            const unsigned digit =
                h <= '9' ? static_cast<unsigned>(h - '0')
                         : static_cast<unsigned>((h | 0x20) - 'a') + 10;
            code = code * 16 + digit;
          }
          if (code >= 0xd800 && code <= 0xdfff) {
            // Surrogate halves never appear in this library's writers
            // (they escape only control bytes); pairs are out of scope.
            fail("surrogate \\u escapes are not supported by this reader");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          pos_ += 4;
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number '" + token + "'");
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

Value parseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("json: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace robust::obs::json
