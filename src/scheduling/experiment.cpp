#include "robust/scheduling/experiment.hpp"

#include <algorithm>

#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::sched {

std::vector<Fig3Row> runFig3(const Fig3Options& options) {
  ROBUST_REQUIRE(options.mappings > 0, "runFig3: no mappings requested");

  // One shared instance (the paper evaluates all mappings on one system).
  Pcg32 etcRng = makeStream(options.seed, /*id=*/0);
  const EtcMatrix etc = generateEtc(options.etc, etcRng);

  std::vector<Fig3Row> rows(options.mappings);
  parallelFor(
      0, options.mappings,
      [&](std::size_t m) {
        Pcg32 rng = makeStream(options.seed, /*id=*/1 + m);
        const Mapping mapping =
            randomMapping(etc.apps(), etc.machines(), rng);
        const IndependentTaskSystem system(etc, mapping, options.tau);
        const auto analysis = system.analyze();

        Fig3Row row;
        row.makespan = analysis.predictedMakespan;
        row.robustness = analysis.robustness;
        row.loadBalance = loadBalanceIndex(etc, mapping);

        const auto counts = mapping.countPerMachine();
        const auto finish = finishingTimes(etc, mapping);
        const std::size_t makespanMachine = static_cast<std::size_t>(
            std::max_element(finish.begin(), finish.end()) - finish.begin());
        row.makespanMachineCount = counts[makespanMachine];
        row.maxMachineCount =
            *std::max_element(counts.begin(), counts.end());
        row.inS1 = row.makespanMachineCount == row.maxMachineCount;
        rows[m] = row;
      },
      options.threads);
  return rows;
}

}  // namespace robust::sched
