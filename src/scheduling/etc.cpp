#include "robust/scheduling/etc.hpp"

#include <algorithm>

#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"

namespace robust::sched {

EtcMatrix::EtcMatrix(std::size_t apps, std::size_t machines)
    : apps_(apps), machines_(machines), data_(apps * machines, 0.0) {
  ROBUST_REQUIRE(apps > 0 && machines > 0,
                 "EtcMatrix: dimensions must be positive");
}

EtcMatrix generateEtc(const EtcOptions& options, Pcg32& rng) {
  ROBUST_REQUIRE(options.meanTaskTime > 0.0,
                 "generateEtc: meanTaskTime must be positive");
  ROBUST_REQUIRE(options.taskHeterogeneity >= 0.0 &&
                     options.machineHeterogeneity >= 0.0,
                 "generateEtc: heterogeneities must be non-negative");

  EtcMatrix etc(options.apps, options.machines);
  for (std::size_t i = 0; i < options.apps; ++i) {
    const double q =
        rnd::gammaMeanCv(rng, options.meanTaskTime, options.taskHeterogeneity);
    for (std::size_t j = 0; j < options.machines; ++j) {
      etc(i, j) = rnd::gammaMeanCv(rng, q, options.machineHeterogeneity);
    }
  }

  auto sortRow = [&](std::size_t i) {
    std::vector<double> row(options.machines);
    for (std::size_t j = 0; j < options.machines; ++j) {
      row[j] = etc(i, j);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t j = 0; j < options.machines; ++j) {
      etc(i, j) = row[j];
    }
  };
  auto sortRowEvenColumns = [&](std::size_t i) {
    std::vector<double> evens;
    for (std::size_t j = 0; j < options.machines; j += 2) {
      evens.push_back(etc(i, j));
    }
    std::sort(evens.begin(), evens.end());
    std::size_t k = 0;
    for (std::size_t j = 0; j < options.machines; j += 2) {
      etc(i, j) = evens[k++];
    }
  };

  switch (options.consistency) {
    case EtcConsistency::Inconsistent:
      break;
    case EtcConsistency::Consistent:
      for (std::size_t i = 0; i < options.apps; ++i) {
        sortRow(i);
      }
      break;
    case EtcConsistency::SemiConsistent:
      for (std::size_t i = 0; i < options.apps; ++i) {
        sortRowEvenColumns(i);
      }
      break;
  }
  return etc;
}

}  // namespace robust::sched
