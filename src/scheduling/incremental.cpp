#include "robust/scheduling/incremental.hpp"

#include "robust/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "robust/util/error.hpp"

namespace robust::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The analyze() reduction over dense load/count arrays: max finishing time
/// scanning machines in ascending order, then the strict-< minimum of the
/// Eq. 6 radii (so ties resolve to the smallest machine index, exactly as
/// IndependentTaskSystem::analyze does). `sqrtCount[c]` holds sqrt(c);
/// IEEE sqrt is correctly rounded, so the table is bit-identical to
/// computing sqrt inline as analyze() does.
EvalResult reduceDense(std::span<const double> load,
                       std::span<const std::size_t> count, double tau,
                       std::span<const double> sqrtCount) {
  EvalResult result;
  result.makespan = load[0];
  for (std::size_t j = 1; j < load.size(); ++j) {
    if (load[j] > result.makespan) {
      result.makespan = load[j];
    }
  }
  const double bound = tau * result.makespan;
  for (std::size_t j = 0; j < load.size(); ++j) {
    if (count[j] == 0) {
      continue;
    }
    const double radius = (bound - load[j]) / sqrtCount[count[j]];
    if (radius < result.robustness) {
      result.robustness = radius;
      result.bindingMachine = j;
    }
  }
  return result;
}

std::vector<double> sqrtTable(std::size_t apps) {
  std::vector<double> table(apps + 1);
  for (std::size_t c = 0; c <= apps; ++c) {
    table[c] = std::sqrt(static_cast<double>(c));
  }
  return table;
}

}  // namespace

// ------------------------------------------------------- ScratchEvaluator

ScratchEvaluator::ScratchEvaluator(const EtcMatrix& etc, double tau)
    : etc_(&etc), tau_(tau), sqrtCount_(sqrtTable(etc.apps())) {
  ROBUST_REQUIRE(tau_ >= 1.0, "ScratchEvaluator: tau must be >= 1");
}

EvalResult ScratchEvaluator::evaluate(
    std::span<const std::size_t> assignment) {
  ROBUST_REQUIRE(assignment.size() == etc_->apps(),
                 "ScratchEvaluator: assignment size must equal app count");
  load_.assign(etc_->machines(), 0.0);
  count_.assign(etc_->machines(), 0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const std::size_t j = assignment[i];
    load_[j] += (*etc_)(i, j);
    ++count_[j];
  }
  return reduceDense(load_, count_, tau_, sqrtCount_);
}

// --------------------------------------------------- IncrementalEvaluator

IncrementalEvaluator::IncrementalEvaluator(const EtcMatrix& etc, Mapping start,
                                           double tau,
                                           const IncrementalOptions& options)
    : etc_(&etc),
      tau_(tau),
      options_(options),
      mapping_(std::move(start)),
      sqrtCount_(sqrtTable(etc.apps())) {
  ROBUST_REQUIRE(etc_->apps() == mapping_.apps() &&
                     etc_->machines() == mapping_.machines(),
                 "IncrementalEvaluator: ETC and mapping dimensions disagree");
  ROBUST_REQUIRE(tau_ >= 1.0, "IncrementalEvaluator: tau must be >= 1");
  rebuild();
}

void IncrementalEvaluator::rebuild() {
  const std::size_t machines = etc_->machines();
  load_.assign(machines, 0.0);
  count_.assign(machines, 0);
  machineApps_.assign(machines, {});
  const auto& assignment = mapping_.assignment();
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const std::size_t j = assignment[i];
    load_[j] += (*etc_)(i, j);
    ++count_[j];
    machineApps_[j].push_back(i);  // ascending: i increases monotonically
  }
  allLoads_.clear();
  byCount_.clear();
  if (!useDense()) {
    for (std::size_t j = 0; j < machines; ++j) {
      allLoads_.emplace(load_[j], j);
      if (count_[j] > 0) {
        byCount_[count_[j]].emplace(load_[j], j);
      }
    }
  }
  current_ = reduceDense(load_, count_, tau_, sqrtCount_);
  pending_.active = false;
  cachedRemovalApp_ = kNone;
  ++stats_.rebuilds;
}

void IncrementalEvaluator::reset(Mapping mapping) {
  ROBUST_REQUIRE(etc_->apps() == mapping.apps() &&
                     etc_->machines() == mapping.machines(),
                 "IncrementalEvaluator: ETC and mapping dimensions disagree");
  mapping_ = std::move(mapping);
  rebuild();
}

double IncrementalEvaluator::resum(std::size_t j, std::size_t skip,
                                   std::size_t add) const {
  // Ascending application-index order — the finishingTimes accumulation
  // order, which the exactness contract requires.
  double sum = 0.0;
  bool added = add == kNone;
  for (const std::size_t a : machineApps_[j]) {
    if (!added && add < a) {
      sum += (*etc_)(add, j);
      added = true;
    }
    if (a == skip) {
      continue;
    }
    sum += (*etc_)(a, j);
  }
  if (!added) {
    sum += (*etc_)(add, j);
  }
  return sum;
}

EvalResult IncrementalEvaluator::evaluateTouched(std::size_t ta, double la,
                                                 std::size_t ca,
                                                 std::size_t tb, double lb,
                                                 std::size_t cb) {
  return useDense() ? evaluateDense(ta, la, ca, tb, lb, cb)
                    : evaluateSorted(ta, la, ca, tb, lb, cb);
}

EvalResult IncrementalEvaluator::evaluateDense(std::size_t ta, double la,
                                               std::size_t ca, std::size_t tb,
                                               double lb, std::size_t cb) {
  // Write the two overrides into the committed arrays, run the plain
  // analyze() reduction over contiguous memory, and restore. Branch-free in
  // the hot loops, and trivially the same float operations as rebuild().
  const double oldLa = load_[ta], oldLb = load_[tb];
  const std::size_t oldCa = count_[ta], oldCb = count_[tb];
  load_[ta] = la;
  count_[ta] = ca;
  load_[tb] = lb;
  count_[tb] = cb;
  const EvalResult result = reduceDense(load_, count_, tau_, sqrtCount_);
  load_[ta] = oldLa;
  count_[ta] = oldCa;
  load_[tb] = oldLb;
  count_[tb] = oldCb;
  return result;
}

EvalResult IncrementalEvaluator::evaluateSorted(std::size_t ta, double la,
                                                std::size_t ca,
                                                std::size_t tb, double lb,
                                                std::size_t cb) const {
  // Max over untouched machines: the touched pair occupies at most two of
  // the top three sorted entries.
  double maxOther = -kInf;
  {
    auto it = allLoads_.rbegin();
    for (int hops = 0; hops < 3 && it != allLoads_.rend(); ++hops, ++it) {
      if (it->second != ta && it->second != tb) {
        maxOther = it->first;
        break;
      }
    }
  }
  EvalResult result;
  result.makespan = std::max(maxOther, std::max(la, lb));
  const double bound = tau_ * result.makespan;

  auto consider = [&result](double radius, std::size_t machine) {
    if (radius < result.robustness ||
        (radius == result.robustness && machine < result.bindingMachine)) {
      result.robustness = radius;
      result.bindingMachine = machine;
    }
  };
  // Per count group, the minimizing untouched machine is the max-load one
  // (same n => smaller load is strictly less binding); ties on load resolve
  // to the smallest index by the LoadOrder comparator.
  for (const auto& [c, group] : byCount_) {
    auto it = group.rbegin();
    for (int hops = 0; hops < 3 && it != group.rend(); ++hops, ++it) {
      if (it->second != ta && it->second != tb) {
        consider((bound - it->first) / sqrtCount_[c], it->second);
        break;
      }
    }
  }
  if (ca > 0) {
    consider((bound - la) / sqrtCount_[ca], ta);
  }
  if (cb > 0) {
    consider((bound - lb) / sqrtCount_[cb], tb);
  }
  return result;
}

EvalResult IncrementalEvaluator::tryMove(std::size_t app,
                                         std::size_t machine) {
  ROBUST_REQUIRE(app < etc_->apps(), "tryMove: app index out of range");
  ROBUST_REQUIRE(machine < etc_->machines(),
                 "tryMove: machine index out of range");
  const std::size_t from = mapping_.assignment()[app];
  if (machine == from) {
    pending_.active = false;
    return current_;
  }
  ++stats_.moves;
  Pending& p = pending_;
  p.active = true;
  p.appA = p.appB = app;
  p.machineA = p.machineB = machine;
  p.touchedA = from;
  if (cachedRemovalApp_ != app) {
    cachedRemovalLoad_ = resum(from, app, kNone);
    cachedRemovalApp_ = app;
  }
  p.loadA = cachedRemovalLoad_;
  p.countA = count_[from] - 1;
  p.touchedB = machine;
  p.loadB = resum(machine, kNone, app);
  p.countB = count_[machine] + 1;
  p.result =
      evaluateTouched(p.touchedA, p.loadA, p.countA, p.touchedB, p.loadB,
                      p.countB);
  return p.result;
}

EvalResult IncrementalEvaluator::trySwap(std::size_t appA, std::size_t appB) {
  ROBUST_REQUIRE(appA < etc_->apps() && appB < etc_->apps(),
                 "trySwap: app index out of range");
  const std::size_t a = mapping_.assignment()[appA];
  const std::size_t b = mapping_.assignment()[appB];
  if (a == b) {  // includes appA == appB
    pending_.active = false;
    return current_;
  }
  ++stats_.swaps;
  Pending& p = pending_;
  p.active = true;
  p.appA = appA;
  p.machineA = b;
  p.appB = appB;
  p.machineB = a;
  p.touchedA = a;
  p.loadA = resum(a, appA, appB);
  p.countA = count_[a];
  p.touchedB = b;
  p.loadB = resum(b, appB, appA);
  p.countB = count_[b];
  p.result =
      evaluateTouched(p.touchedA, p.loadA, p.countA, p.touchedB, p.loadB,
                      p.countB);
  return p.result;
}

void IncrementalEvaluator::applyMachineUpdate(std::size_t machine,
                                              double newLoad,
                                              std::size_t newCount) {
  if (!useDense()) {
    allLoads_.erase({load_[machine], machine});
    allLoads_.emplace(newLoad, machine);
    if (count_[machine] > 0) {
      const auto group = byCount_.find(count_[machine]);
      group->second.erase({load_[machine], machine});
      if (group->second.empty()) {
        byCount_.erase(group);
      }
    }
    if (newCount > 0) {
      byCount_[newCount].emplace(newLoad, machine);
    }
  }
  load_[machine] = newLoad;
  count_[machine] = newCount;
}

bool IncrementalEvaluator::commit() {
  if (!pending_.active) {
    return false;
  }
  const Pending& p = pending_;
  const bool isSwap = p.appB != p.appA;

  auto eraseApp = [this](std::size_t machine, std::size_t app) {
    auto& apps = machineApps_[machine];
    apps.erase(std::lower_bound(apps.begin(), apps.end(), app));
  };
  auto insertApp = [this](std::size_t machine, std::size_t app) {
    auto& apps = machineApps_[machine];
    apps.insert(std::lower_bound(apps.begin(), apps.end(), app), app);
  };
  eraseApp(p.touchedA, p.appA);
  if (isSwap) {
    eraseApp(p.touchedB, p.appB);
  }
  insertApp(p.machineA, p.appA);
  if (isSwap) {
    insertApp(p.machineB, p.appB);
  }
  mapping_.assign(p.appA, p.machineA);
  if (isSwap) {
    mapping_.assign(p.appB, p.machineB);
  }
  applyMachineUpdate(p.touchedA, p.loadA, p.countA);
  applyMachineUpdate(p.touchedB, p.loadB, p.countB);
  current_ = p.result;
  pending_.active = false;
  ++stats_.commits;
  cachedRemovalApp_ = kNone;
  return true;
}

void IncrementalEvaluator::publishStats() {
  if (obs::enabled()) {
    static const obs::MetricId kMoves = obs::counterId("sched.inc_moves");
    static const obs::MetricId kSwaps = obs::counterId("sched.inc_swaps");
    static const obs::MetricId kCommits = obs::counterId("sched.inc_commits");
    static const obs::MetricId kRebuilds =
        obs::counterId("sched.inc_rebuilds");
    obs::addCounter(kMoves, stats_.moves);
    obs::addCounter(kSwaps, stats_.swaps);
    obs::addCounter(kCommits, stats_.commits);
    obs::addCounter(kRebuilds, stats_.rebuilds);
  }
  stats_ = IncrementalStats{};
}

}  // namespace robust::sched
