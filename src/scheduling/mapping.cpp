#include "robust/scheduling/mapping.hpp"

#include <algorithm>

#include "robust/util/error.hpp"

namespace robust::sched {

Mapping::Mapping(std::vector<std::size_t> assignment, std::size_t machines)
    : assignment_(std::move(assignment)), machines_(machines) {
  ROBUST_REQUIRE(machines_ > 0, "Mapping: need at least one machine");
  ROBUST_REQUIRE(!assignment_.empty(), "Mapping: empty assignment");
  for (std::size_t m : assignment_) {
    ROBUST_REQUIRE(m < machines_, "Mapping: machine index out of range");
  }
}

void Mapping::assign(std::size_t app, std::size_t machine) {
  ROBUST_REQUIRE(app < assignment_.size(), "Mapping: app index out of range");
  ROBUST_REQUIRE(machine < machines_, "Mapping: machine index out of range");
  assignment_[app] = machine;
}

std::vector<std::vector<std::size_t>> Mapping::appsPerMachine() const {
  std::vector<std::vector<std::size_t>> apps(machines_);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    apps[assignment_[i]].push_back(i);
  }
  return apps;
}

std::vector<std::size_t> Mapping::countPerMachine() const {
  std::vector<std::size_t> counts(machines_, 0);
  for (std::size_t m : assignment_) {
    ++counts[m];
  }
  return counts;
}

Mapping randomMapping(std::size_t apps, std::size_t machines, Pcg32& rng) {
  ROBUST_REQUIRE(apps > 0 && machines > 0,
                 "randomMapping: dimensions must be positive");
  std::vector<std::size_t> assignment(apps);
  for (auto& m : assignment) {
    m = rng.nextBounded(static_cast<std::uint32_t>(machines));
  }
  return Mapping(std::move(assignment), machines);
}

std::vector<double> finishingTimes(const EtcMatrix& etc,
                                   const Mapping& mapping) {
  ROBUST_REQUIRE(etc.apps() == mapping.apps() &&
                     etc.machines() == mapping.machines(),
                 "finishingTimes: ETC and mapping dimensions disagree");
  std::vector<double> finish(etc.machines(), 0.0);
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    finish[mapping.machineOf(i)] += etc(i, mapping.machineOf(i));
  }
  return finish;
}

double makespan(const EtcMatrix& etc, const Mapping& mapping) {
  const auto finish = finishingTimes(etc, mapping);
  return *std::max_element(finish.begin(), finish.end());
}

double loadBalanceIndex(const EtcMatrix& etc, const Mapping& mapping) {
  const auto finish = finishingTimes(etc, mapping);
  const double latest = *std::max_element(finish.begin(), finish.end());
  const double earliest = *std::min_element(finish.begin(), finish.end());
  return latest > 0.0 ? earliest / latest : 0.0;
}

}  // namespace robust::sched
