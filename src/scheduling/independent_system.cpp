#include "robust/scheduling/independent_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/util/error.hpp"

namespace robust::sched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

IndependentTaskSystem::IndependentTaskSystem(const EtcMatrix& etc,
                                             Mapping mapping, double tau)
    : etc_(etc), mapping_(std::move(mapping)), tau_(tau) {
  ROBUST_REQUIRE(etc_.apps() == mapping_.apps() &&
                     etc_.machines() == mapping_.machines(),
                 "IndependentTaskSystem: ETC and mapping dimensions disagree");
  ROBUST_REQUIRE(tau_ >= 1.0,
                 "IndependentTaskSystem: tau < 1 would declare the predicted "
                 "makespan itself a violation");
}

std::vector<double> IndependentTaskSystem::estimatedTimes() const {
  std::vector<double> c(etc_.apps());
  for (std::size_t i = 0; i < etc_.apps(); ++i) {
    c[i] = etc_(i, mapping_.machineOf(i));
  }
  return c;
}

std::vector<double> IndependentTaskSystem::finishing() const {
  return finishingTimes(etc_, mapping_);
}

double IndependentTaskSystem::predictedMakespan() const {
  return makespan(etc_, mapping_);
}

double IndependentTaskSystem::robustnessRadius(std::size_t machine) const {
  ROBUST_REQUIRE(machine < etc_.machines(),
                 "robustnessRadius: machine index out of range");
  const auto counts = mapping_.countPerMachine();
  if (counts[machine] == 0) {
    return kInf;
  }
  const auto finish = finishing();
  const double mOrig = *std::max_element(finish.begin(), finish.end());
  return (tau_ * mOrig - finish[machine]) /
         std::sqrt(static_cast<double>(counts[machine]));
}

MakespanRobustness IndependentTaskSystem::analyze() const {
  MakespanRobustness result;
  const auto finish = finishing();
  const auto counts = mapping_.countPerMachine();
  result.predictedMakespan =
      *std::max_element(finish.begin(), finish.end());
  result.radii.resize(etc_.machines(), kInf);
  result.robustness = kInf;
  for (std::size_t j = 0; j < etc_.machines(); ++j) {
    if (counts[j] == 0) {
      continue;
    }
    result.radii[j] = (tau_ * result.predictedMakespan - finish[j]) /
                      std::sqrt(static_cast<double>(counts[j]));
    if (result.radii[j] < result.robustness) {
      result.robustness = result.radii[j];
      result.bindingMachine = j;
    }
  }
  return result;
}

std::vector<double> IndependentTaskSystem::criticalPoint() const {
  const MakespanRobustness analysis = analyze();
  const std::size_t jStar = analysis.bindingMachine;
  const auto finish = finishing();
  const auto counts = mapping_.countPerMachine();
  ROBUST_REQUIRE(counts[jStar] > 0,
                 "criticalPoint: binding machine has no applications");

  // Observation (2): every application on the binding machine receives the
  // same error; the shared error makes F_{j*} reach tau * M_orig exactly.
  const double perAppError =
      (tau_ * analysis.predictedMakespan - finish[jStar]) /
      static_cast<double>(counts[jStar]);

  std::vector<double> cStar = estimatedTimes();
  for (std::size_t i = 0; i < etc_.apps(); ++i) {
    if (mapping_.machineOf(i) == jStar) {
      cStar[i] += perAppError;
    }
  }
  return cStar;
}

core::ProblemSpec IndependentTaskSystem::toSpec(
    core::AnalyzerOptions options) const {
  const double bound = tau_ * predictedMakespan();
  const auto counts = mapping_.countPerMachine();

  std::vector<core::PerformanceFeature> features;
  for (std::size_t j = 0; j < etc_.machines(); ++j) {
    if (counts[j] == 0) {
      continue;  // identically-zero finishing time; no boundary exists
    }
    num::Vec weights(etc_.apps(), 0.0);
    for (std::size_t i = 0; i < etc_.apps(); ++i) {
      if (mapping_.machineOf(i) == j) {
        weights[i] = 1.0;  // Eq. 4: F_j = sum of C_i over apps on m_j
      }
    }
    features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(j),
        core::ImpactFunction::affine(std::move(weights), 0.0),
        core::ToleranceBounds::atMost(bound)});
  }

  // Trivial single-subspace instance of the general perturbation model:
  // one continuous block, C (the actual execution times), measured by the
  // caller's norm. Bit-identical to the legacy parameter formulation.
  core::PerturbationSubspace c;
  c.name = "C (actual execution times)";
  c.origin = estimatedTimes();
  c.norm = static_cast<int>(options.norm);
  c.normWeights = options.normWeights;
  c.units = "seconds";

  core::ProblemSpec spec;
  spec.features = std::move(features);
  spec.options = std::move(options);
  spec.subspaces.push_back(std::move(c));
  return spec;
}

core::CompiledProblem IndependentTaskSystem::compile(
    core::AnalyzerOptions options) const {
  return core::CompiledProblem::compile(toSpec(std::move(options)));
}

core::RobustnessAnalyzer IndependentTaskSystem::toAnalyzer(
    core::AnalyzerOptions options) const {
  return core::RobustnessAnalyzer(toSpec(std::move(options)));
}

}  // namespace robust::sched
