#include "robust/scheduling/heuristics.hpp"

#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "robust/scheduling/incremental.hpp"
#include "robust/scheduling/independent_system.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared machinery for the list heuristics: pick-and-commit loops over
/// (application, machine) completion times.
struct ListState {
  explicit ListState(const EtcMatrix& matrix)
      : etc(matrix),
        available(matrix.machines(), 0.0),
        assignment(matrix.apps(), 0),
        mapped(matrix.apps(), false) {}

  const EtcMatrix& etc;
  std::vector<double> available;  ///< machine availability times
  std::vector<std::size_t> assignment;
  std::vector<bool> mapped;

  /// Best (machine, completion time) for application `i` given availability.
  [[nodiscard]] std::pair<std::size_t, double> bestCompletion(
      std::size_t i) const {
    std::size_t bestM = 0;
    double bestCt = kInf;
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      const double ct = available[j] + etc(i, j);
      if (ct < bestCt) {
        bestCt = ct;
        bestM = j;
      }
    }
    return {bestM, bestCt};
  }

  void commit(std::size_t app, std::size_t machine) {
    assignment[app] = machine;
    available[machine] += etc(app, machine);
    mapped[app] = true;
  }

  [[nodiscard]] Mapping toMapping() && {
    return Mapping(std::move(assignment), etc.machines());
  }
};

/// Validates an EtcObjective and returns the tolerance to construct
/// evaluators with (the Makespan kind never reads the metric, so any valid
/// tau will do).
double evaluatorTau(const EtcObjective& objective) {
  if (objective.kind == EtcObjective::Kind::Makespan) {
    return std::max(1.0, objective.tau);
  }
  ROBUST_REQUIRE(objective.tau >= 1.0, "EtcObjective: tau must be >= 1");
  if (objective.kind == EtcObjective::Kind::CappedRobustness) {
    ROBUST_REQUIRE(objective.makespanCap > 0.0,
                   "EtcObjective: cap must be positive");
  }
  return objective.tau;
}

}  // namespace

EtcObjective EtcObjective::makespan() { return {Kind::Makespan, 1.2, 0.0}; }

EtcObjective EtcObjective::negatedRobustness(double tau) {
  return {Kind::NegatedRobustness, tau, 0.0};
}

EtcObjective EtcObjective::cappedRobustness(double tau, double makespanCap) {
  return {Kind::CappedRobustness, tau, makespanCap};
}

double EtcObjective::score(double makespanValue, double robustness) const {
  switch (kind) {
    case Kind::Makespan:
      return makespanValue;
    case Kind::NegatedRobustness:
      return -robustness;
    case Kind::CappedRobustness:
      if (makespanValue > makespanCap) {
        return makespanValue - makespanCap;  // infeasible: positive
      }
      return -robustness;  // feasible: negative
  }
  return 0.0;  // unreachable
}

MappingObjective EtcObjective::generic(const EtcMatrix& etc) const {
  switch (kind) {
    case Kind::Makespan:
      return makespanObjective(etc);
    case Kind::NegatedRobustness:
      return negatedRobustnessObjective(etc, tau);
    case Kind::CappedRobustness:
      return cappedRobustnessObjective(etc, tau, makespanCap);
  }
  return {};  // unreachable
}

MappingObjective makespanObjective(const EtcMatrix& etc) {
  return [&etc](const Mapping& mapping) { return makespan(etc, mapping); };
}

MappingObjective negatedRobustnessObjective(const EtcMatrix& etc, double tau) {
  return [&etc, tau](const Mapping& mapping) {
    const IndependentTaskSystem system(etc, mapping, tau);
    return -system.analyze().robustness;
  };
}

MappingObjective cappedRobustnessObjective(const EtcMatrix& etc, double tau,
                                           double makespanCap) {
  ROBUST_REQUIRE(makespanCap > 0.0,
                 "cappedRobustnessObjective: cap must be positive");
  return [&etc, tau, makespanCap](const Mapping& mapping) {
    const double ms = makespan(etc, mapping);
    if (ms > makespanCap) {
      return ms - makespanCap;  // infeasible: positive, decreasing to 0
    }
    const IndependentTaskSystem system(etc, mapping, tau);
    return -system.analyze().robustness;  // feasible: negative
  };
}

Mapping roundRobinMapping(const EtcMatrix& etc) {
  std::vector<std::size_t> assignment(etc.apps());
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    assignment[i] = i % etc.machines();
  }
  return Mapping(std::move(assignment), etc.machines());
}

Mapping olbMapping(const EtcMatrix& etc) {
  ListState state(etc);
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    const auto earliest =
        std::min_element(state.available.begin(), state.available.end());
    state.commit(i, static_cast<std::size_t>(
                        earliest - state.available.begin()));
  }
  return std::move(state).toMapping();
}

Mapping metMapping(const EtcMatrix& etc) {
  std::vector<std::size_t> assignment(etc.apps());
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    std::size_t bestM = 0;
    for (std::size_t j = 1; j < etc.machines(); ++j) {
      if (etc(i, j) < etc(i, bestM)) {
        bestM = j;
      }
    }
    assignment[i] = bestM;
  }
  return Mapping(std::move(assignment), etc.machines());
}

Mapping mctMapping(const EtcMatrix& etc) {
  ListState state(etc);
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    state.commit(i, state.bestCompletion(i).first);
  }
  return std::move(state).toMapping();
}

Mapping minMinMapping(const EtcMatrix& etc) {
  ListState state(etc);
  for (std::size_t round = 0; round < etc.apps(); ++round) {
    std::size_t pickApp = 0;
    std::size_t pickMachine = 0;
    double pickCt = kInf;
    for (std::size_t i = 0; i < etc.apps(); ++i) {
      if (state.mapped[i]) {
        continue;
      }
      const auto [m, ct] = state.bestCompletion(i);
      if (ct < pickCt) {
        pickCt = ct;
        pickApp = i;
        pickMachine = m;
      }
    }
    state.commit(pickApp, pickMachine);
  }
  return std::move(state).toMapping();
}

Mapping maxMinMapping(const EtcMatrix& etc) {
  ListState state(etc);
  for (std::size_t round = 0; round < etc.apps(); ++round) {
    std::size_t pickApp = 0;
    std::size_t pickMachine = 0;
    double pickCt = -kInf;
    for (std::size_t i = 0; i < etc.apps(); ++i) {
      if (state.mapped[i]) {
        continue;
      }
      const auto [m, ct] = state.bestCompletion(i);
      if (ct > pickCt) {
        pickCt = ct;
        pickApp = i;
        pickMachine = m;
      }
    }
    state.commit(pickApp, pickMachine);
  }
  return std::move(state).toMapping();
}

Mapping sufferageMapping(const EtcMatrix& etc) {
  ListState state(etc);
  for (std::size_t round = 0; round < etc.apps(); ++round) {
    std::size_t pickApp = 0;
    std::size_t pickMachine = 0;
    double pickSufferage = -kInf;
    for (std::size_t i = 0; i < etc.apps(); ++i) {
      if (state.mapped[i]) {
        continue;
      }
      // Best and second-best completion times for app i.
      double best = kInf;
      double second = kInf;
      std::size_t bestM = 0;
      for (std::size_t j = 0; j < etc.machines(); ++j) {
        const double ct = state.available[j] + etc(i, j);
        if (ct < best) {
          second = best;
          best = ct;
          bestM = j;
        } else if (ct < second) {
          second = ct;
        }
      }
      const double sufferage = second == kInf ? 0.0 : second - best;
      if (sufferage > pickSufferage) {
        pickSufferage = sufferage;
        pickApp = i;
        pickMachine = bestM;
      }
    }
    state.commit(pickApp, pickMachine);
  }
  return std::move(state).toMapping();
}

Mapping duplexMapping(const EtcMatrix& etc) {
  Mapping minMin = minMinMapping(etc);
  Mapping maxMin = maxMinMapping(etc);
  return makespan(etc, minMin) <= makespan(etc, maxMin) ? minMin : maxMin;
}

Mapping tabuSearch(const EtcMatrix& etc, Mapping start,
                   const MappingObjective& objective,
                   const TabuOptions& options) {
  ROBUST_REQUIRE(static_cast<bool>(objective), "tabuSearch: null objective");
  ROBUST_REQUIRE(options.iterations > 0 && options.tenure > 0 &&
                     options.patience > 0,
                 "tabuSearch: invalid options");

  Mapping current = std::move(start);
  double currentValue = objective(current);
  Mapping best = current;
  double bestValue = currentValue;

  // tabuUntil[app][machine]: iteration until which assigning `app` back to
  // `machine` is forbidden (the inverse-move convention).
  std::vector<std::vector<int>> tabuUntil(
      etc.apps(), std::vector<int>(etc.machines(), -1));
  int sinceImprovement = 0;

  for (int iter = 0; iter < options.iterations; ++iter) {
    double moveValue = kInf;
    std::size_t moveApp = 0;
    std::size_t moveMachine = 0;
    bool haveMove = false;
    for (std::size_t i = 0; i < etc.apps(); ++i) {
      const std::size_t original = current.machineOf(i);
      for (std::size_t j = 0; j < etc.machines(); ++j) {
        if (j == original) {
          continue;
        }
        current.assign(i, j);
        const double value = objective(current);
        current.assign(i, original);
        const bool tabu = tabuUntil[i][j] > iter;
        // Aspiration: a tabu move that improves on the incumbent is allowed.
        if (tabu && value >= bestValue) {
          continue;
        }
        if (value < moveValue) {
          moveValue = value;
          moveApp = i;
          moveMachine = j;
          haveMove = true;
        }
      }
    }
    if (!haveMove) {
      break;  // entire neighborhood tabu and non-aspiring
    }
    const std::size_t from = current.machineOf(moveApp);
    current.assign(moveApp, moveMachine);
    currentValue = moveValue;
    tabuUntil[moveApp][from] = iter + options.tenure;  // forbid the undo
    if (currentValue < bestValue) {
      bestValue = currentValue;
      best = current;
      sinceImprovement = 0;
    } else if (++sinceImprovement >= options.patience) {
      break;
    }
  }
  return best;
}

Mapping greedyRobustMapping(const EtcMatrix& etc, double tau) {
  ROBUST_REQUIRE(tau >= 1.0, "greedyRobustMapping: tau must be >= 1");

  // Commit the "biggest" applications first (largest minimum ETC), the
  // classic list-scheduling order that leaves small tasks for balancing.
  std::vector<std::size_t> order(etc.apps());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::vector<double> minEtc(etc.apps(), kInf);
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      minEtc[i] = std::min(minEtc[i], etc(i, j));
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return minEtc[a] > minEtc[b];
  });

  std::vector<double> load(etc.machines(), 0.0);
  std::vector<std::size_t> count(etc.machines(), 0);
  std::vector<std::size_t> assignment(etc.apps(), 0);

  // Normalized partial-mapping robustness: Eq. 7 over the committed
  // applications, divided by the partial makespan. The normalization
  // removes the metric's makespan-inflation degeneracy (Eq. 6 scales with
  // tau * M, so raw rho rewards piling work onto one machine); rho / M is
  // scale-free and rewards balanced, genuinely robust placements.
  auto normalizedRobustness = [&]() {
    double makespanNow = 0.0;
    for (double f : load) {
      makespanNow = std::max(makespanNow, f);
    }
    double rho = kInf;
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      if (count[j] > 0) {
        rho = std::min(rho, (tau * makespanNow - load[j]) /
                                std::sqrt(static_cast<double>(count[j])));
      }
    }
    return rho / makespanNow;
  };

  for (std::size_t app : order) {
    std::size_t bestMachine = 0;
    double bestRho = -kInf;
    double bestCompletion = kInf;
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      load[j] += etc(app, j);
      ++count[j];
      const double rho = normalizedRobustness();
      const double completion = load[j];
      load[j] -= etc(app, j);
      --count[j];
      if (rho > bestRho ||
          (rho == bestRho && completion < bestCompletion)) {
        bestRho = rho;
        bestCompletion = completion;
        bestMachine = j;
      }
    }
    assignment[app] = bestMachine;
    load[bestMachine] += etc(app, bestMachine);
    ++count[bestMachine];
  }
  return Mapping(std::move(assignment), etc.machines());
}

Mapping localSearch(std::size_t apps, std::size_t machines, Mapping start,
                    const MappingObjective& objective, int maxRounds) {
  ROBUST_REQUIRE(static_cast<bool>(objective), "localSearch: null objective");
  ROBUST_REQUIRE(start.apps() == apps && start.machines() == machines,
                 "localSearch: start mapping does not match the shape");
  Mapping current = std::move(start);
  double currentValue = objective(current);
  for (int round = 0; round < maxRounds; ++round) {
    double bestValue = currentValue;
    std::size_t bestApp = 0;
    std::size_t bestMachine = 0;
    bool improved = false;
    for (std::size_t i = 0; i < apps; ++i) {
      const std::size_t original = current.machineOf(i);
      for (std::size_t j = 0; j < machines; ++j) {
        if (j == original) {
          continue;
        }
        current.assign(i, j);
        const double value = objective(current);
        if (value < bestValue) {
          bestValue = value;
          bestApp = i;
          bestMachine = j;
          improved = true;
        }
      }
      current.assign(i, original);
    }
    if (!improved) {
      break;
    }
    current.assign(bestApp, bestMachine);
    currentValue = bestValue;
  }
  return current;
}

Mapping localSearch(const EtcMatrix& etc, Mapping start,
                    const MappingObjective& objective, int maxRounds) {
  return localSearch(etc.apps(), etc.machines(), std::move(start), objective,
                     maxRounds);
}

Mapping localSearch(const EtcMatrix& etc, Mapping start,
                    const EtcObjective& objective,
                    const LocalSearchOptions& options) {
  ROBUST_REQUIRE(options.maxRounds > 0, "localSearch: maxRounds must be > 0");
  const obs::Span span("sched.localSearch");
  const double tau = evaluatorTau(objective);
  std::size_t workers =
      options.threads == 0 ? defaultThreadCount() : options.threads;
  workers = std::min(workers, etc.apps());

  // One evaluator per worker, all tracking the same incumbent. The scan
  // only calls tryMove (stateless w.r.t. the incumbent), so workers share
  // nothing; the chosen move is then committed to every evaluator.
  std::vector<IncrementalEvaluator> evaluators;
  evaluators.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    evaluators.emplace_back(etc, start, tau);
  }
  double currentValue = objective.score(evaluators[0].current().makespan,
                                        evaluators[0].current().robustness);

  struct BlockBest {
    double value = 0.0;
    std::size_t app = 0;
    std::size_t machine = 0;
    bool found = false;
  };
  std::vector<BlockBest> blockBests(workers);
  const std::size_t chunk = (etc.apps() + workers - 1) / workers;
  auto scanBlock = [&](std::size_t w) {
    IncrementalEvaluator& evaluator = evaluators[w];
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(etc.apps(), lo + chunk);
    BlockBest best;
    // Strict < on an ascending (app, machine) scan: the block winner is the
    // lowest-(app, machine) minimizer, the deterministic tie-break rule.
    double bestValue = currentValue;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t original = evaluator.mapping().machineOf(i);
      for (std::size_t j = 0; j < etc.machines(); ++j) {
        if (j == original) {
          continue;
        }
        const EvalResult result = evaluator.tryMove(i, j);
        const double value = objective.score(result.makespan,
                                             result.robustness);
        if (value < bestValue) {
          bestValue = value;
          best = {value, i, j, true};
        }
      }
    }
    evaluator.revert();
    blockBests[w] = best;
  };

  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) {
    pool = std::make_unique<ThreadPool>(workers);
  }
  for (int round = 0; round < options.maxRounds; ++round) {
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kRounds =
          obs::counterId("sched.search_rounds");
      static const obs::MetricId kProbes =
          obs::counterId("sched.search_probes");
      obs::addCounter(kRounds);
      obs::addCounter(kProbes, etc.apps() * (etc.machines() - 1));
    }
    if (pool) {
      for (std::size_t w = 0; w < workers; ++w) {
        pool->submit([&scanBlock, w] { scanBlock(w); });
      }
      pool->wait();
    } else {
      scanBlock(0);
    }
    // Reduce block winners in ascending block order with strict <, so the
    // global winner is again the lowest-(app, machine) minimizer — exactly
    // the move the serial scan picks, for any worker count.
    BlockBest best;
    for (const BlockBest& candidate : blockBests) {
      if (candidate.found && (!best.found || candidate.value < best.value)) {
        best = candidate;
      }
    }
    if (!best.found) {
      break;
    }
    for (IncrementalEvaluator& evaluator : evaluators) {
      evaluator.tryMove(best.app, best.machine);
      evaluator.commit();
    }
    currentValue = best.value;
  }
  for (IncrementalEvaluator& evaluator : evaluators) {
    evaluator.publishStats();
  }
  return evaluators[0].mapping();
}

Mapping annealMapping(std::size_t apps, std::size_t machines, Mapping start,
                      const MappingObjective& objective,
                      const AnnealingOptions& options) {
  ROBUST_REQUIRE(static_cast<bool>(objective),
                 "annealMapping: null objective");
  ROBUST_REQUIRE(options.iterations > 0 && options.coolingRate > 0.0 &&
                     options.coolingRate < 1.0,
                 "annealMapping: invalid options");
  ROBUST_REQUIRE(start.apps() == apps && start.machines() == machines,
                 "annealMapping: start mapping shape mismatch");

  Pcg32 rng(options.seed, /*stream=*/7);
  Mapping current = std::move(start);
  double currentValue = objective(current);
  Mapping best = current;
  double bestValue = currentValue;

  double temperature =
      options.initialTemperature * std::max(1.0, std::fabs(currentValue));
  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto app = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint32_t>(apps)));
    const std::size_t original = current.machineOf(app);
    auto machine = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint32_t>(machines)));
    if (machine == original) {
      continue;
    }
    current.assign(app, machine);
    const double value = objective(current);
    const double delta = value - currentValue;
    if (delta <= 0.0 ||
        rng.nextDouble() < std::exp(-delta / std::max(temperature, 1e-12))) {
      currentValue = value;
      if (value < bestValue) {
        bestValue = value;
        best = current;
      }
    } else {
      current.assign(app, original);  // reject
    }
    temperature *= options.coolingRate;
  }
  return best;
}

Mapping simulatedAnnealing(const EtcMatrix& etc, Mapping start,
                           const MappingObjective& objective,
                           const AnnealingOptions& options) {
  return annealMapping(etc.apps(), etc.machines(), std::move(start),
                       objective, options);
}

Mapping simulatedAnnealing(const EtcMatrix& etc, Mapping start,
                           const EtcObjective& objective,
                           const AnnealingOptions& options) {
  ROBUST_REQUIRE(options.iterations > 0 && options.coolingRate > 0.0 &&
                     options.coolingRate < 1.0,
                 "annealMapping: invalid options");
  const double tau = evaluatorTau(objective);

  // Same stream id and draw pattern as annealMapping, so the walk visits
  // the same proposals and returns the same mapping for the same seed.
  Pcg32 rng(options.seed, /*stream=*/7);
  IncrementalEvaluator evaluator(etc, std::move(start), tau);
  double currentValue = objective.score(evaluator.current().makespan,
                                        evaluator.current().robustness);
  Mapping best = evaluator.mapping();
  double bestValue = currentValue;

  double temperature =
      options.initialTemperature * std::max(1.0, std::fabs(currentValue));
  for (int iter = 0; iter < options.iterations; ++iter) {
    const auto app = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint32_t>(etc.apps())));
    const std::size_t original = evaluator.mapping().machineOf(app);
    const auto machine = static_cast<std::size_t>(
        rng.nextBounded(static_cast<std::uint32_t>(etc.machines())));
    if (machine == original) {
      continue;
    }
    const EvalResult result = evaluator.tryMove(app, machine);
    const double value = objective.score(result.makespan, result.robustness);
    const double delta = value - currentValue;
    if (delta <= 0.0 ||
        rng.nextDouble() < std::exp(-delta / std::max(temperature, 1e-12))) {
      evaluator.commit();
      currentValue = value;
      if (value < bestValue) {
        bestValue = value;
        best = evaluator.mapping();
      }
    } else {
      evaluator.revert();
    }
    temperature *= options.coolingRate;
  }
  return best;
}

namespace {

/// The GA body, parameterized over how a genome is scored: the generic
/// overload builds a Mapping and calls the closure, the EtcObjective
/// overload scores through the reusable-buffer ScratchEvaluator. Identical
/// RNG stream and draw pattern in both, so equal fitness functions produce
/// equal results.
Mapping runGeneticAlgorithm(
    std::size_t shapeApps, std::size_t shapeMachines,
    const Mapping& seedMapping,
    const std::function<double(const std::vector<std::size_t>&)>& evaluate,
    const GeneticOptions& options) {
  ROBUST_REQUIRE(options.populationSize >= 2 && options.generations > 0 &&
                     options.tournamentSize >= 1 && options.eliteCount >= 0 &&
                     options.eliteCount < options.populationSize,
                 "geneticAlgorithm: invalid options");
  ROBUST_REQUIRE(
      seedMapping.apps() == shapeApps && seedMapping.machines() == shapeMachines,
      "geneticAlgorithm: seed mapping does not match the shape");

  Pcg32 rng(options.seed, /*stream=*/11);
  const std::size_t apps = shapeApps;
  const auto machines = static_cast<std::uint32_t>(shapeMachines);

  struct Individual {
    std::vector<std::size_t> genes;
    double fitness;  // objective value; smaller is better
  };

  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(options.populationSize));
  population.push_back(
      {seedMapping.assignment(), evaluate(seedMapping.assignment())});
  while (population.size() <
         static_cast<std::size_t>(options.populationSize)) {
    std::vector<std::size_t> genes(apps);
    for (auto& g : genes) {
      g = rng.nextBounded(machines);
    }
    const double fitness = evaluate(genes);
    population.push_back({std::move(genes), fitness});
  }

  auto byFitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };

  auto tournament = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (int t = 0; t < options.tournamentSize; ++t) {
      const auto idx = static_cast<std::size_t>(rng.nextBounded(
          static_cast<std::uint32_t>(population.size())));
      if (winner == nullptr || population[idx].fitness < winner->fitness) {
        winner = &population[idx];
      }
    }
    return *winner;
  };

  for (int gen = 0; gen < options.generations; ++gen) {
    std::sort(population.begin(), population.end(), byFitness);
    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < options.eliteCount; ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }
    while (next.size() < population.size()) {
      const Individual& parentA = tournament();
      const Individual& parentB = tournament();
      std::vector<std::size_t> child(apps);
      if (rng.nextDouble() < options.crossoverRate) {
        for (std::size_t i = 0; i < apps; ++i) {
          child[i] =
              rng.nextDouble() < 0.5 ? parentA.genes[i] : parentB.genes[i];
        }
      } else {
        child = parentA.genes;
      }
      for (std::size_t i = 0; i < apps; ++i) {
        if (rng.nextDouble() < options.mutationRate) {
          child[i] = rng.nextBounded(machines);
        }
      }
      const double fitness = evaluate(child);
      next.push_back({std::move(child), fitness});
    }
    population = std::move(next);
  }
  const auto best = std::min_element(population.begin(), population.end(),
                                     byFitness);
  return Mapping(best->genes, shapeMachines);
}

}  // namespace

Mapping geneticAlgorithm(std::size_t apps, std::size_t machines,
                         Mapping seedMapping,
                         const MappingObjective& objective,
                         const GeneticOptions& options) {
  ROBUST_REQUIRE(static_cast<bool>(objective),
                 "geneticAlgorithm: null objective");
  return runGeneticAlgorithm(
      apps, machines, seedMapping,
      [&](const std::vector<std::size_t>& genes) {
        return objective(Mapping(genes, machines));
      },
      options);
}

Mapping geneticAlgorithm(const EtcMatrix& etc, Mapping seedMapping,
                         const MappingObjective& objective,
                         const GeneticOptions& options) {
  return geneticAlgorithm(etc.apps(), etc.machines(), std::move(seedMapping),
                          objective, options);
}

Mapping geneticAlgorithm(const EtcMatrix& etc, Mapping seedMapping,
                         const EtcObjective& objective,
                         const GeneticOptions& options) {
  ScratchEvaluator scratch(etc, evaluatorTau(objective));
  return runGeneticAlgorithm(
      etc.apps(), etc.machines(), seedMapping,
      [&](const std::vector<std::size_t>& genes) {
        const EvalResult result = scratch.evaluate(genes);
        return objective.score(result.makespan, result.robustness);
      },
      options);
}

const std::vector<HeuristicEntry>& constructiveHeuristics() {
  static const std::vector<HeuristicEntry> entries = {
      {"round-robin", &roundRobinMapping}, {"olb", &olbMapping},
      {"met", &metMapping},                {"mct", &mctMapping},
      {"min-min", &minMinMapping},         {"max-min", &maxMinMapping},
      {"sufferage", &sufferageMapping},    {"duplex", &duplexMapping},
  };
  return entries;
}

}  // namespace robust::sched
