#include "robust/scheduling/cloud_system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "robust/util/error.hpp"

namespace robust::sched {

CloudSystem::CloudSystem(CloudScenario scenario)
    : scenario_(std::move(scenario)) {
  ROBUST_REQUIRE(scenario_.etc.apps() > 0 && scenario_.etc.machines() > 0,
                 "CloudSystem: empty ETC matrix");
  ROBUST_REQUIRE(scenario_.memDemand.size() == scenario_.etc.apps(),
                 "CloudSystem: memDemand size != task count");
  ROBUST_REQUIRE(scenario_.memCapacity.size() == scenario_.etc.machines(),
                 "CloudSystem: memCapacity size != machine count");
  ROBUST_REQUIRE(scenario_.replication >= 1,
                 "CloudSystem: replication factor must be >= 1");
  ROBUST_REQUIRE(scenario_.tau >= 1.0,
                 "CloudSystem: tau < 1 would declare the predicted makespan "
                 "itself a violation");
  for (double demand : scenario_.memDemand) {
    ROBUST_REQUIRE(demand >= 0.0, "CloudSystem: negative memory demand");
  }
  for (double capacity : scenario_.memCapacity) {
    ROBUST_REQUIRE(capacity >= 0.0, "CloudSystem: negative memory capacity");
  }
}

std::size_t CloudSystem::taskOfSlot(std::size_t slot) const {
  ROBUST_REQUIRE(slot < slots(), "taskOfSlot: slot index out of range");
  return slot / scenario_.replication;
}

Mapping CloudSystem::greedyMapping() const {
  const std::size_t T = tasks();
  const std::size_t M = machines();
  const std::size_t R = scenario_.replication;
  std::vector<std::size_t> assignment(T * R, 0);
  std::vector<double> finish(M, 0.0);
  std::vector<bool> hostsTask(M, false);
  for (std::size_t t = 0; t < T; ++t) {
    std::fill(hostsTask.begin(), hostsTask.end(), false);
    for (std::size_t r = 0; r < R; ++r) {
      // Prefer machines not yet hosting this task (distinct hosts raise the
      // failure radius); only when every machine already hosts it may a
      // replica double up.
      std::size_t best = M;
      double bestFinish = std::numeric_limits<double>::infinity();
      const bool allUsed =
          std::all_of(hostsTask.begin(), hostsTask.end(),
                      [](bool used) { return used; });
      for (std::size_t j = 0; j < M; ++j) {
        if (!allUsed && hostsTask[j]) {
          continue;
        }
        const double candidate = finish[j] + scenario_.etc(t, j);
        if (candidate < bestFinish) {
          bestFinish = candidate;
          best = j;
        }
      }
      assignment[t * R + r] = best;
      finish[best] = bestFinish;
      hostsTask[best] = true;
    }
  }
  return Mapping(std::move(assignment), M);
}

double CloudSystem::memoryViolation(const Mapping& mapping) const {
  ROBUST_REQUIRE(mapping.apps() == slots() && mapping.machines() == machines(),
                 "CloudSystem: mapping shape does not match the scenario "
                 "(slots x machines)");
  num::Vec demand(machines(), 0.0);
  for (std::size_t slot = 0; slot < slots(); ++slot) {
    demand[mapping.machineOf(slot)] += scenario_.memDemand[taskOfSlot(slot)];
  }
  double violation = 0.0;
  for (std::size_t j = 0; j < machines(); ++j) {
    violation += std::max(0.0, demand[j] - scenario_.memCapacity[j]);
  }
  return violation;
}

bool CloudSystem::isFeasible(const Mapping& mapping) const {
  return memoryViolation(mapping) == 0.0;
}

double CloudSystem::predictedMakespan(const Mapping& mapping) const {
  ROBUST_REQUIRE(mapping.apps() == slots() && mapping.machines() == machines(),
                 "CloudSystem: mapping shape does not match the scenario "
                 "(slots x machines)");
  num::Vec finish(machines(), 0.0);
  for (std::size_t slot = 0; slot < slots(); ++slot) {
    const std::size_t j = mapping.machineOf(slot);
    finish[j] += scenario_.etc(taskOfSlot(slot), j);
  }
  return *std::max_element(finish.begin(), finish.end());
}

core::FailureModel CloudSystem::failureModel(const Mapping& mapping) const {
  ROBUST_REQUIRE(mapping.apps() == slots() && mapping.machines() == machines(),
                 "CloudSystem: mapping shape does not match the scenario "
                 "(slots x machines)");
  core::FailureModel model;
  model.machines = machines();
  model.replicaHosts.resize(tasks());
  const std::size_t R = scenario_.replication;
  for (std::size_t t = 0; t < tasks(); ++t) {
    model.replicaHosts[t].reserve(R);
    for (std::size_t r = 0; r < R; ++r) {
      model.replicaHosts[t].push_back(mapping.machineOf(t * R + r));
    }
  }
  return model;
}

std::size_t CloudSystem::failureRadius(const Mapping& mapping) const {
  return core::failureRadius(failureModel(mapping));
}

core::ProblemSpec CloudSystem::toSpec(const Mapping& mapping,
                                      core::AnalyzerOptions options) const {
  const std::size_t T = tasks();
  const std::size_t M = machines();
  const double bound = scenario_.tau * predictedMakespan(mapping);

  // Per-machine load at the origin, expressed over [s (dim T), d (dim M)].
  std::vector<num::Vec> loadWeights(M);
  std::vector<num::Vec> memCoeffs(M);
  std::vector<bool> occupied(M, false);
  for (std::size_t slot = 0; slot < slots(); ++slot) {
    const std::size_t j = mapping.machineOf(slot);
    const std::size_t t = taskOfSlot(slot);
    if (!occupied[j]) {
      loadWeights[j].assign(T + M, 0.0);
      memCoeffs[j].assign(T + M, 0.0);
      occupied[j] = true;
    }
    loadWeights[j][t] += scenario_.etc(t, j);
    memCoeffs[j][t] += scenario_.memDemand[t];
  }

  core::ProblemSpec spec;
  for (std::size_t j = 0; j < M; ++j) {
    if (!occupied[j]) {
      continue;  // identically-zero finishing time; no boundary, no demand
    }
    loadWeights[j][T + j] = 1.0;  // the machine's own load offset d_j
    spec.features.push_back(core::PerformanceFeature{
        "F_" + std::to_string(j),
        core::ImpactFunction::affine(std::move(loadWeights[j]), 0.0),
        core::ToleranceBounds::atMost(bound)});
    spec.constraints.push_back(core::LinearConstraint{
        "memory capacity of m_" + std::to_string(j),
        std::move(memCoeffs[j]), scenario_.memCapacity[j]});
  }

  core::PerturbationSubspace s;
  s.name = "s (task size multipliers)";
  s.origin = num::Vec(T, 1.0);
  s.norm = static_cast<int>(core::NormKind::L2);
  s.units = "x (multiple of estimated size)";
  spec.subspaces.push_back(std::move(s));

  core::PerturbationSubspace d;
  d.name = "d (machine load offsets)";
  d.origin = num::Vec(M, 0.0);
  d.norm = static_cast<int>(core::NormKind::L2);
  d.units = "seconds";
  spec.subspaces.push_back(std::move(d));

  spec.options = std::move(options);
  return spec;
}

core::RobustnessReport CloudSystem::analyze(
    const Mapping& mapping, core::AnalyzerOptions options) const {
  return core::CompiledProblem::compile(toSpec(mapping, std::move(options)))
      .evaluate();
}

MappingObjective CloudSystem::searchObjective(
    CloudObjectiveOptions objectiveOptions,
    core::AnalyzerOptions analyzerOptions) const {
  return [this, objectiveOptions, analyzerOptions](const Mapping& mapping) {
    const core::FailureModel model = failureModel(mapping);
    double distinctBonus = 0.0;
    for (const auto& hosts : model.replicaHosts) {
      distinctBonus += static_cast<double>(core::distinctHostCount(hosts) - 1);
    }
    const double violation = memoryViolation(mapping);
    if (violation > 0.0) {
      // Descend on the overcommit first; the vanishing bonus term only
      // breaks ties between equally-infeasible neighbors in favor of
      // replica separation.
      return objectiveOptions.infeasiblePenalty + violation -
             1e-6 * distinctBonus;
    }
    const double rho = analyze(mapping, analyzerOptions).metric;
    // Score hierarchy: failure radius >> distinct-host bonus >> rho. The
    // caps keep each tier from ever outvoting the one above it (and make
    // +inf metrics — every bound unreachable — comparable).
    const double rhoTerm =
        std::isfinite(rho)
            ? std::min(rho, objectiveOptions.distinctHostWeight / 2)
            : objectiveOptions.distinctHostWeight / 2;
    const double radius = static_cast<double>(core::failureRadius(model));
    return -(objectiveOptions.failureWeight * radius +
             objectiveOptions.distinctHostWeight * distinctBonus + rhoTerm);
  };
}

Mapping CloudSystem::improve(Mapping start, int maxRounds) const {
  return localSearch(slots(), machines(), std::move(start), searchObjective(),
                     maxRounds);
}

}  // namespace robust::sched
