#include "robust/scheduling/etc_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "robust/util/diagnostics.hpp"

namespace robust::sched {

void saveEtcCsv(const EtcMatrix& etc, std::ostream& os) {
  os << "app";
  for (std::size_t j = 0; j < etc.machines(); ++j) {
    os << ",m" << j;
  }
  os << '\n';
  char buf[64];
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    os << 'a' << i;
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      // %.17g round-trips IEEE doubles exactly.
      std::snprintf(buf, sizeof(buf), "%.17g", etc(i, j));
      os << ',' << buf;
    }
    os << '\n';
  }
}

namespace {

std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

/// Parses one data cell at (line, field) and applies the value policy.
double parseCell(const std::string& cell, const util::Diagnostics& diag,
                 std::size_t line, std::size_t field,
                 const core::InputPolicy& policy) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    diag.fail(util::RejectCategory::Format, line, field,
              "cell '" + cell + "' is not a number");
  }
  if (policy.requireFinite && !std::isfinite(v)) {
    diag.fail(util::RejectCategory::Domain, line, field,
              "cell '" + cell + "' is not a finite positive time");
  }
  if (policy.requireDomainSigns && !(v > 0.0)) {
    diag.fail(util::RejectCategory::Domain, line, field,
              "cell '" + cell + "' is not a positive time (ETC entries are "
              "execution times)");
  }
  return v;
}

}  // namespace

EtcMatrix loadEtcCsv(std::istream& is, std::string_view source,
                     const core::InputPolicy& policy) {
  util::Diagnostics diag{std::string(source)};
  std::string line;
  if (!std::getline(is, line)) {
    diag.failInput(util::RejectCategory::Truncated,
                   "empty input (expected an 'app,m0,...' header)");
  }
  std::size_t lineNo = 1;
  const auto header = splitCsvLine(line);
  if (header.size() < 2 || header[0] != "app") {
    diag.failLine(util::RejectCategory::Structure, lineNo,
                  "malformed header '" + line +
                      "' (expected 'app,m0,m1,...' with at least one machine "
                      "column)");
  }
  const std::size_t machines = header.size() - 1;
  if (machines > policy.maxDeclaredCount) {
    diag.failLine(util::RejectCategory::Domain, lineNo,
                  "header declares " + std::to_string(machines) +
                              " machine columns, above the policy cap of " +
                              std::to_string(policy.maxDeclaredCount));
  }

  std::vector<std::vector<double>> rows;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line == "\r") {
      continue;
    }
    const auto cells = splitCsvLine(line);
    if (cells.size() != machines + 1) {
      diag.failLine(util::RejectCategory::Structure, lineNo,
                    "ragged row: expected " +
                                std::to_string(machines + 1) + " cells, got " +
                                std::to_string(cells.size()));
    }
    if (rows.size() == policy.maxDeclaredCount) {
      diag.failLine(util::RejectCategory::Domain, lineNo,
                    "more than " +
                                std::to_string(policy.maxDeclaredCount) +
                                " application rows, above the policy cap");
    }
    std::vector<double> row(machines);
    for (std::size_t j = 0; j < machines; ++j) {
      // Column = 1-based CSV field index; the label cell is field 1.
      row[j] = parseCell(cells[j + 1], diag, lineNo, j + 2, policy);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    diag.failInput(util::RejectCategory::Truncated,
                   "no application rows after the header");
  }

  EtcMatrix etc(rows.size(), machines);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      etc(i, j) = rows[i][j];
    }
  }
  return etc;
}

}  // namespace robust::sched
