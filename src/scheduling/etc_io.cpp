#include "robust/scheduling/etc_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "robust/util/error.hpp"

namespace robust::sched {

void saveEtcCsv(const EtcMatrix& etc, std::ostream& os) {
  os << "app";
  for (std::size_t j = 0; j < etc.machines(); ++j) {
    os << ",m" << j;
  }
  os << '\n';
  char buf[64];
  for (std::size_t i = 0; i < etc.apps(); ++i) {
    os << 'a' << i;
    for (std::size_t j = 0; j < etc.machines(); ++j) {
      // %.17g round-trips IEEE doubles exactly.
      std::snprintf(buf, sizeof(buf), "%.17g", etc(i, j));
      os << ',' << buf;
    }
    os << '\n';
  }
}

namespace {

std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

double parseCell(const std::string& cell) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  ROBUST_REQUIRE(end != cell.c_str() && *end == '\0',
                 "loadEtcCsv: non-numeric cell '" + cell + "'");
  return v;
}

}  // namespace

EtcMatrix loadEtcCsv(std::istream& is) {
  std::string line;
  ROBUST_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 "loadEtcCsv: empty input");
  const auto header = splitCsvLine(line);
  ROBUST_REQUIRE(header.size() >= 2 && header[0] == "app",
                 "loadEtcCsv: malformed header");
  const std::size_t machines = header.size() - 1;

  std::vector<std::vector<double>> rows;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const auto cells = splitCsvLine(line);
    ROBUST_REQUIRE(cells.size() == machines + 1,
                   "loadEtcCsv: ragged row '" + line + "'");
    std::vector<double> row(machines);
    for (std::size_t j = 0; j < machines; ++j) {
      row[j] = parseCell(cells[j + 1]);
    }
    rows.push_back(std::move(row));
  }
  ROBUST_REQUIRE(!rows.empty(), "loadEtcCsv: no application rows");

  EtcMatrix etc(rows.size(), machines);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < machines; ++j) {
      etc(i, j) = rows[i][j];
    }
  }
  return etc;
}

}  // namespace robust::sched
