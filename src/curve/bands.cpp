#include "robust/curve/bands.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::curve {

namespace {

/// Lentz's continued fraction for the incomplete beta function
/// (Numerical Recipes form). Converges in a handful of iterations for
/// x < (a + 1) / (a + b + 2), which the caller guarantees.
double betaContinuedFraction(double a, double b, double x) {
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

/// Smallest x with I_x(a, b) >= p, by bisection. The incomplete beta is
/// continuous and strictly increasing in x on (0, 1), so 200 halvings pin
/// the root far below the band's statistical resolution.
double inverseRegularizedBeta(double p, double a, double b) {
  if (p <= 0.0) {
    return 0.0;
  }
  if (p >= 1.0) {
    return 1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (regularizedIncompleteBeta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularizedIncompleteBeta(double a, double b, double x) {
  ROBUST_REQUIRE(a > 0.0 && b > 0.0,
                 "regularizedIncompleteBeta: shape parameters must be "
                 "positive");
  ROBUST_REQUIRE(x >= 0.0 && x <= 1.0,
                 "regularizedIncompleteBeta: x must lie in [0, 1]");
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double lnBeta =
      std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - lnBeta);
  // The continued fraction converges fast only on one side of the mean;
  // use the symmetry I_x(a, b) = 1 - I_{1-x}(b, a) for the other.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double dkwEpsilon(std::size_t samples, double confidence) {
  ROBUST_REQUIRE(samples > 0, "dkwEpsilon: samples must be positive");
  ROBUST_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "dkwEpsilon: confidence must lie in (0, 1)");
  const double alpha = 1.0 - confidence;
  return std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(samples)));
}

BinomialInterval clopperPearson(std::uint64_t successes, std::uint64_t trials,
                                double confidence) {
  ROBUST_REQUIRE(trials > 0, "clopperPearson: trials must be positive");
  ROBUST_REQUIRE(successes <= trials,
                 "clopperPearson: successes must not exceed trials");
  ROBUST_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "clopperPearson: confidence must lie in (0, 1)");
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  BinomialInterval out;
  out.lower = successes == 0
                  ? 0.0
                  : inverseRegularizedBeta(alpha / 2.0, k, n - k + 1.0);
  out.upper = successes == trials
                  ? 1.0
                  : inverseRegularizedBeta(1.0 - alpha / 2.0, k + 1.0, n - k);
  return out;
}

}  // namespace robust::curve
