#include "robust/curve/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/util/error.hpp"

namespace robust::curve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DriftTracker::DriftTracker(const core::CompiledProblem& problem,
                           double threshold)
    : problem_(&problem), threshold_(threshold) {
  ROBUST_REQUIRE(problem.fastSolver_ && !problem.multi_ &&
                     problem.callables_.empty() &&
                     problem.constraints_.empty() &&
                     !problem.parameter_.discrete,
                 "DriftTracker: requires an unconstrained continuous affine "
                 "problem on the analytic kernel lane");
  for (const auto& sub : problem.subspaces_) {
    ROBUST_REQUIRE(!sub.discrete,
                   "DriftTracker: discrete subspaces have no per-row "
                   "closed form to maintain");
  }
  ROBUST_REQUIRE(std::isfinite(threshold),
                 "DriftTracker: threshold must be finite");
  origin_ = problem.parameter_.origin;
  anchor_ = origin_;
  dots_ = problem.dotOrigin_;  // the compile-cached exact blocked dots
  recomputeRho();
  anchorRho_ = rho_;
}

void DriftTracker::recomputeRho() {
  const core::CompiledProblem& p = *problem_;
  double best = kInf;
  std::size_t bestFeature = 0;
  for (std::size_t f = 0; f < p.features_.size(); ++f) {
    const std::size_t row = p.rowIndex_[f];
    const double value = dots_[row] + p.constants_[f];
    const auto& bounds = p.features_[f].bounds;
    double gap = kInf;
    if (bounds.max) {
      gap = std::min(gap, *bounds.max - value);
    }
    if (bounds.min) {
      gap = std::min(gap, value - *bounds.min);
    }
    double radius;
    if (gap < 0.0) {
      radius = 0.0;  // origin already violates this feature's bound
    } else {
      const double deff = p.effDual_[row];
      radius = deff > 0.0 ? gap / deff : kInf;
    }
    if (radius < best) {
      best = radius;
      bestFeature = f;
    }
  }
  rho_ = best;
  binding_ = bestFeature;
}

DriftStatus DriftTracker::applyUpdate(std::size_t component,
                                      double newValue) {
  ROBUST_REQUIRE(component < origin_.size(),
                 "DriftTracker::applyUpdate: component out of range");
  ROBUST_REQUIRE(std::isfinite(newValue),
                 "DriftTracker::applyUpdate: value must be finite");
  const core::CompiledProblem& p = *problem_;
  const double dv = newValue - origin_[component];
  origin_[component] = newValue;
  if (dv != 0.0) {
    // One origin component moves each row dot by w[row][k] * dv: O(rows),
    // a strided column walk of the packed weight matrix.
    const double* column = p.weights_.data() + component;
    const std::size_t rows = dots_.size();
    for (std::size_t r = 0; r < rows; ++r) {
      dots_[r] += column[r * p.dim_] * dv;
    }
  }
  const bool wasBelow = rho_ < threshold_;
  recomputeRho();
  ++updates_;

  DriftStatus status;
  status.rho = rho_;
  status.bindingFeature = binding_;
  status.crossedBelow = !wasBelow && rho_ < threshold_;
  status.updates = updates_;

  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kUpdates =
        obs::counterId("curve.drift.updates");
    obs::addCounter(kUpdates);
    if (status.crossedBelow) {
      static const obs::MetricId kCrossings =
          obs::counterId("curve.drift.crossings");
      obs::addCounter(kCrossings);
    }
  }
  return status;
}

void DriftTracker::rebase() {
  const core::CompiledProblem& p = *problem_;
  if (!dots_.empty()) {
    num::simd::dotRowsBlocked(p.weights_.data(), dots_.size(),
                              {origin_.data(), origin_.size()},
                              dots_.data());
  }
  recomputeRho();
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kRebases =
        obs::counterId("curve.drift.rebases");
    obs::addCounter(kRebases);
  }
}

double DriftTracker::driftDistance() const {
  num::Vec delta(origin_.size());
  for (std::size_t k = 0; k < origin_.size(); ++k) {
    delta[k] = origin_[k] - anchor_[k];
  }
  return displacementNorm(*problem_, {delta.data(), delta.size()});
}

double DriftTracker::rhoLowerBound() const {
  if (!std::isfinite(anchorRho_)) {
    return 0.0;  // +inf anchor rho carries no finite Lipschitz bound down
  }
  return std::max(0.0, anchorRho_ - driftDistance());
}

double DriftTracker::rhoUpperBound() const {
  if (!std::isfinite(anchorRho_)) {
    return anchorRho_;
  }
  return anchorRho_ + driftDistance();
}

}  // namespace robust::curve
