#include "robust/curve/curve.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <list>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "robust/net/wire.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"
#include "robust/util/rng.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::curve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Norm of one subspace block. L1/L2/LInf ride the fixed-order blocked
/// kernels (bit-identical scalar vs AVX2); the weighted norm is a plain
/// element-order loop — sequential, so equally deterministic.
double blockNorm(core::NormKind kind, std::span<const double> x,
                 std::span<const double> w) {
  switch (kind) {
    case core::NormKind::L1:
      return num::simd::norm1Blocked(x);
    case core::NormKind::L2:
      return num::simd::norm2Blocked(x);
    case core::NormKind::LInf:
      return num::simd::normInfBlocked(x);
    case core::NormKind::Weighted: {
      double acc = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        acc += w[i] * x[i] * x[i];
      }
      return std::sqrt(acc);
    }
  }
  return 0.0;
}

/// JSON-safe number rendering: %.17g round-trip for finite values, the
/// extreme finite double for infinities (JSON has no infinity literal),
/// 0 for NaN. Matches the run-report writer's formatting.
void appendJsonNumber(std::ostream& out, double v) {
  if (std::isnan(v)) {
    v = 0.0;
  } else if (std::isinf(v)) {
    v = v > 0.0 ? std::numeric_limits<double>::max()
                : std::numeric_limits<double>::lowest();
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

double displacementNorm(const core::CompiledProblem& problem,
                        std::span<const double> displacement) {
  ROBUST_REQUIRE(displacement.size() == problem.dimension(),
                 "displacementNorm: displacement dimension mismatch");
  const auto& subs = problem.subspaces();
  double combined = 0.0;
  for (std::size_t s = 0; s < subs.size(); ++s) {
    const std::size_t lo = problem.subspaceOffset(s);
    const std::size_t hi = problem.subspaceOffset(s + 1);
    const std::span<const double> block = displacement.subspan(lo, hi - lo);
    const auto kind = static_cast<core::NormKind>(subs[s].norm);
    std::span<const double> w(subs[s].normWeights);
    if (kind == core::NormKind::Weighted && w.empty()) {
      w = std::span<const double>(problem.options().normWeights)
              .subspan(lo, hi - lo);
    }
    combined = std::max(combined, blockNorm(kind, block, w));
  }
  return combined;
}

/// The engine proper. A class (not free functions) because it is the named
/// friend of core::CompiledProblem: it reads the packed rows, the
/// compile-cached origin dots, and the effective dual norms directly.
class CurveEngine {
 public:
  /// One affine row of the fast-lane plan, pre-resolved against the
  /// compiled defaults. gapMax / gapMin are the slack to the upper / lower
  /// tolerance bound at the origin (+inf when the bound is absent);
  /// originRadius = min gap / effective dual norm is a provable lower
  /// bound on any crossing radius along ANY unit direction (Hoelder:
  /// |a . u| <= dual norm), which is what makes the sorted-row prune a
  /// pure skip-of-losers.
  struct Row {
    double originRadius = kInf;
    double gapMax = kInf;
    double gapMin = kInf;
  };

  struct FastPlan {
    std::size_t dim = 0;
    std::size_t rows = 0;          ///< active rows, pruning order
    std::vector<double> weights;   ///< row-major [rows x dim], sorted
    std::vector<Row> rowInfo;      ///< ascending originRadius
    bool originViolated = false;   ///< some bound already broken at r = 0
  };

  /// The closed-form lane needs every feature on an analytic affine row,
  /// one continuous subspace, and no feasibility clipping.
  static bool fastLaneEligible(const core::CompiledProblem& p) {
    if (!p.fastSolver_ || p.multi_ || !p.callables_.empty() ||
        !p.constraints_.empty()) {
      return false;
    }
    if (p.parameter_.discrete) {
      return false;
    }
    for (const auto& sub : p.subspaces_) {
      if (sub.discrete) {
        return false;
      }
    }
    return true;
  }

  static FastPlan buildFastPlan(const core::CompiledProblem& p) {
    FastPlan plan;
    plan.dim = p.dim_;
    struct Cand {
      double originRadius;
      double gapMax;
      double gapMin;
      std::size_t row;
    };
    std::vector<Cand> cands;
    cands.reserve(p.features_.size());
    for (std::size_t f = 0; f < p.features_.size(); ++f) {
      const std::size_t row = p.rowIndex_[f];
      const double value = p.dotOrigin_[row] + p.constants_[f];
      const auto& bounds = p.features_[f].bounds;
      double gapMax = kInf;
      double gapMin = kInf;
      if (bounds.max) {
        gapMax = *bounds.max - value;
      }
      if (bounds.min) {
        gapMin = value - *bounds.min;
      }
      if (gapMax < 0.0 || gapMin < 0.0) {
        plan.originViolated = true;
        return plan;
      }
      const double deff = p.effDual_[row];
      if (!(deff > 0.0)) {
        continue;  // constant feature: no direction ever moves it
      }
      cands.push_back({std::min(gapMax, gapMin) / deff, gapMax, gapMin, row});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.originRadius != b.originRadius) {
        return a.originRadius < b.originRadius;
      }
      return a.row < b.row;
    });
    plan.rows = cands.size();
    plan.weights.resize(plan.rows * plan.dim);
    plan.rowInfo.resize(plan.rows);
    for (std::size_t i = 0; i < plan.rows; ++i) {
      std::copy_n(p.weights_.data() + cands[i].row * plan.dim, plan.dim,
                  plan.weights.data() + i * plan.dim);
      plan.rowInfo[i] = Row{cands[i].originRadius, cands[i].gapMax,
                            cands[i].gapMin};
    }
    return plan;
  }

  /// Sample i's unit direction: standard Gaussians from the counter-based
  /// substream (scheduling-independent by construction), normalized under
  /// the problem's displacement norm. The all-but-impossible zero draw
  /// falls back to the first axis so the kernel never divides by zero.
  static void sampleDirection(const core::CompiledProblem& p,
                              std::uint64_t seed, std::size_t sample,
                              std::span<double> u) {
    Pcg32 rng = makeStream(seed, kCurveStreamFamily,
                           static_cast<std::uint64_t>(sample));
    const std::size_t dim = u.size();
    std::size_t k = 0;
    while (k + 1 < dim) {
      rnd::standardNormalPair(rng, u[k], u[k + 1]);
      k += 2;
    }
    if (k < dim) {
      double z0 = 0.0;
      double z1 = 0.0;
      rnd::standardNormalPair(rng, z0, z1);
      u[k] = z0;
    }
    double norm = displacementNorm(p, {u.data(), u.size()});
    if (!(norm > 0.0) || !std::isfinite(norm)) {
      std::fill(u.begin(), u.end(), 0.0);
      u[0] = 1.0;
      norm = displacementNorm(p, {u.data(), u.size()});
    }
    const double inv = 1.0 / norm;
    for (double& v : u) {
      v *= inv;
    }
  }

  /// Closed-form critical radius along `u`: per row the feature moves as
  /// value(r) = value(0) + r * (a . u), so the upper bound breaks at
  /// gapMax / slope (slope > 0) and the lower bound at gapMin / -slope
  /// (slope < 0); the sample's critical radius is the minimum crossing.
  /// Rows stream through dotRowsBlocked in blocks of 8; with `prune`, the
  /// loop stops once even the best possible crossing of the remaining
  /// (sorted) rows provably exceeds the incumbent — the 1e-9 relative
  /// margin absorbs kernel-dot and normalization rounding, so pruning
  /// never changes the returned bits (pinned by tests).
  static double criticalRadiusFast(const FastPlan& plan,
                                   std::span<const double> u, double* slopes,
                                   bool prune, std::uint64_t& rowsVisited) {
    constexpr std::size_t kBlock = 8;
    double best = kInf;
    for (std::size_t start = 0; start < plan.rows; start += kBlock) {
      if (prune && plan.rowInfo[start].originRadius > best * (1.0 + 1e-9)) {
        break;
      }
      const std::size_t n = std::min(kBlock, plan.rows - start);
      num::simd::dotRowsBlocked(plan.weights.data() + start * plan.dim, n, u,
                                slopes);
      for (std::size_t j = 0; j < n; ++j) {
        const Row& row = plan.rowInfo[start + j];
        const double s = slopes[j];
        if (s > 0.0 && row.gapMax < kInf) {
          const double t = row.gapMax / s;
          if (t < best) {
            best = t;
          }
        } else if (s < 0.0 && row.gapMin < kInf) {
          const double t = row.gapMin / -s;
          if (t < best) {
            best = t;
          }
        }
      }
      rowsVisited += n;
    }
    return best;
  }

  /// Full-lane violation predicate at one perturbation point: any feature
  /// outside its tolerance bounds. Hard-infeasible points are outside the
  /// perturbation space the radius search counts, so they never violate.
  static bool violates(const core::CompiledProblem& p,
                       std::span<const double> x) {
    if (!p.constraints_.empty() && !p.originFeasible(x)) {
      return false;
    }
    for (const auto& f : p.features_) {
      if (!f.bounds.contains(f.impact.evaluate(x))) {
        return true;
      }
    }
    return false;
  }

  /// Full-lane critical radius: expanding bracket (doubling from `scale`)
  /// until the predicate fires, then 100 bisection halvings. Discrete
  /// perturbations floor the result, mirroring the Section 3.2 metric
  /// floor (floor is monotone, so min over samples stays >= rho).
  static double criticalRadiusFull(const core::CompiledProblem& p,
                                   std::span<const double> u, num::Vec& point,
                                   double scale, bool floorRadius) {
    const std::span<const double> origin(p.parameter_.origin);
    auto violatesAt = [&](double r) {
      for (std::size_t k = 0; k < origin.size(); ++k) {
        point[k] = origin[k] + r * u[k];
      }
      return violates(p, {point.data(), point.size()});
    };
    if (violatesAt(0.0)) {
      return 0.0;
    }
    double lo = 0.0;
    double hi = scale;
    bool found = false;
    for (int i = 0; i < 80; ++i) {
      if (violatesAt(hi)) {
        found = true;
        break;
      }
      lo = hi;
      hi *= 2.0;
    }
    if (!found) {
      return kInf;
    }
    for (int i = 0; i < 100; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (violatesAt(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return floorRadius ? std::floor(hi) : hi;
  }

  /// Shard dispatcher shared by both lanes. Samples land in disjoint
  /// output slots and each is a pure function of its substream, so the
  /// result is identical for every worker count and shard schedule; the
  /// dynamic ticket only balances load. Per-shard exceptions are captured
  /// and the lowest shard index rethrows after the pool drains.
  template <typename MakeScratch, typename Body>
  static void forEachSample(std::size_t n, std::size_t shardSize,
                            std::size_t threads, MakeScratch makeScratch,
                            Body body) {
    shardSize = std::max<std::size_t>(1, shardSize);
    const std::size_t nShards = (n + shardSize - 1) / shardSize;
    std::size_t workers = threads == 0 ? defaultThreadCount() : threads;
    workers = std::min(workers, nShards);
    auto runShard = [&](std::size_t s, auto& scratch) {
      const std::size_t lo = s * shardSize;
      const std::size_t hi = std::min(n, lo + shardSize);
      for (std::size_t i = lo; i < hi; ++i) {
        body(i, scratch);
      }
      if (obs::enabled()) [[unlikely]] {
        static const obs::MetricId kShards = obs::counterId("curve.shards");
        obs::addCounter(kShards);
      }
    };
    if (workers <= 1) {
      auto scratch = makeScratch();
      for (std::size_t s = 0; s < nShards; ++s) {
        runShard(s, scratch);
      }
      return;
    }
    std::atomic<std::size_t> ticket{0};
    std::vector<std::exception_ptr> errors(nShards);
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&] {
        auto scratch = makeScratch();
        for (;;) {
          const std::size_t s = ticket.fetch_add(1, std::memory_order_relaxed);
          if (s >= nShards) {
            break;
          }
          try {
            runShard(s, scratch);
          } catch (...) {
            errors[s] = std::current_exception();
          }
        }
      });
    }
    pool.wait();
    for (auto& e : errors) {
      if (e) {
        std::rethrow_exception(e);
      }
    }
  }

  static CurveResult run(const core::CompiledProblem& p,
                         const CurveOptions& o) {
    CurveResult r;
    r.samples = o.samples;
    r.seed = o.seed;
    r.confidence = o.confidence;
    r.dkwEpsilon = curve::dkwEpsilon(o.samples, o.confidence);
    r.rho = p.evaluateMetric().metric;
    r.fastLane = fastLaneEligible(p);
    r.radii.assign(o.samples, 0.0);

    if (r.fastLane) {
      const FastPlan plan = buildFastPlan(p);
      if (!plan.originViolated) {
        struct Scratch {
          std::vector<double> dir;
          std::vector<double> slopes;
          std::uint64_t rowsVisited = 0;
        };
        forEachSample(
            o.samples, o.shardSamples, o.threads,
            [&] { return Scratch{std::vector<double>(plan.dim),
                                 std::vector<double>(8), 0}; },
            [&](std::size_t i, Scratch& scratch) {
              sampleDirection(p, o.seed, i, scratch.dir);
              r.radii[i] = criticalRadiusFast(plan, scratch.dir,
                                              scratch.slopes.data(), o.prune,
                                              scratch.rowsVisited);
              if (obs::enabled() &&
                  (i + 1) % 1024 == 0) [[unlikely]] {
                static const obs::MetricId kRows =
                    obs::counterId("curve.rows_visited");
                obs::addCounter(kRows, scratch.rowsVisited);
                scratch.rowsVisited = 0;
              }
            });
      }
    } else {
      const bool floorRadius = [&] {
        if (p.parameter_.discrete) {
          return true;
        }
        for (const auto& sub : p.subspaces_) {
          if (sub.discrete) {
            return true;
          }
        }
        return false;
      }();
      const double scale =
          std::isfinite(r.rho) && r.rho > 0.0 ? r.rho : 1.0;
      struct Scratch {
        std::vector<double> dir;
        num::Vec point;
      };
      forEachSample(
          o.samples, o.shardSamples, o.threads,
          [&] { return Scratch{std::vector<double>(p.dim_),
                               num::Vec(p.dim_)}; },
          [&](std::size_t i, Scratch& scratch) {
            sampleDirection(p, o.seed, i, scratch.dir);
            r.radii[i] = criticalRadiusFull(p, scratch.dir, scratch.point,
                                            scale, floorRadius);
            if (obs::enabled()) [[unlikely]] {
              static const obs::MetricId kFull =
                  obs::counterId("curve.fallback_samples");
              obs::addCounter(kFull);
            }
          });
    }

    std::sort(r.radii.begin(), r.radii.end());
    r.finiteRadii = static_cast<std::size_t>(
        std::lower_bound(r.radii.begin(), r.radii.end(), kInf) -
        r.radii.begin());
    buildPoints(r, o.gridPoints);

    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kSamples = obs::counterId("curve.samples");
      obs::addCounter(kSamples, o.samples);
    }
    return r;
  }

  /// Quantile-spaced digest over the finite radii: grid index j lands on
  /// the j/(g-1) quantile sample, consecutive duplicates collapse, and
  /// every point carries its exact Clopper-Pearson band. Quantile spacing
  /// (vs a linear radius grid) covers the CDF uniformly in probability,
  /// so heavy upper tails cannot starve the informative region.
  static void buildPoints(CurveResult& r, std::size_t gridPoints) {
    r.points.clear();
    const std::size_t n = r.samples;
    if (n == 0) {
      return;
    }
    const std::size_t fin = r.finiteRadii;
    if (fin == 0) {
      const BinomialInterval band = clopperPearson(0, n, r.confidence);
      const double anchor = std::isfinite(r.rho) ? r.rho : 0.0;
      r.points.push_back(CurvePoint{anchor, 0.0, band.lower, band.upper});
      return;
    }
    const std::size_t g =
        std::max<std::size_t>(1, std::min(gridPoints, fin));
    double prevRadius = -kInf;
    for (std::size_t j = 0; j < g; ++j) {
      const std::size_t idx = g == 1 ? fin - 1 : j * (fin - 1) / (g - 1);
      const double radius = r.radii[idx];
      if (radius == prevRadius) {
        continue;
      }
      prevRadius = radius;
      const auto count = static_cast<std::uint64_t>(
          std::upper_bound(r.radii.begin(), r.radii.end(), radius) -
          r.radii.begin());
      const BinomialInterval band = clopperPearson(count, n, r.confidence);
      r.points.push_back(CurvePoint{
          radius, static_cast<double>(count) / static_cast<double>(n),
          band.lower, band.upper});
    }
  }
};

double CurveResult::probabilityAt(double r) const {
  if (samples == 0) {
    return 0.0;
  }
  const auto count = static_cast<std::size_t>(
      std::upper_bound(radii.begin(), radii.end(), r) - radii.begin());
  return static_cast<double>(count) / static_cast<double>(samples);
}

double CurveResult::radiusAtProbability(double p) const {
  if (samples == 0) {
    return kInf;
  }
  const double clamped = std::min(1.0, std::max(0.0, p));
  auto k = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples)));
  k = std::min(std::max<std::size_t>(1, k), samples);
  return radii[k - 1];
}

std::uint64_t problemContentKey(const core::CompiledProblem& problem) {
  // The wire format speaks the legacy single-subspace form only; the
  // compiled problem normalizes legacy specs into exactly one subspace,
  // so rebuild that form from the public accessors.
  if (problem.subspaces().size() != 1) {
    return 0;
  }
  core::ProblemSpec spec;
  spec.features = problem.features();
  spec.parameter = problem.parameter();
  spec.options = problem.options();
  spec.constraints = problem.constraints();
  try {
    const std::vector<std::uint8_t> bytes = net::encodeProblemSpec(spec);
    return net::fnv1a(bytes);
  } catch (const std::exception&) {
    return 0;  // callable features etc.: uncacheable, computed direct
  }
}

namespace {

/// A tiny LRU of full curve results keyed by content + curve-shaping
/// options. Threads / shardSamples are deliberately NOT part of the key:
/// the result is bit-identical regardless, so a hit from a differently
/// parallel run is still exact.
struct CacheKey {
  std::uint64_t content = 0;
  std::size_t samples = 0;
  std::uint64_t seed = 0;
  std::size_t gridPoints = 0;
  double confidence = 0.0;
  bool prune = false;

  bool operator==(const CacheKey&) const = default;
};

std::mutex gCacheMutex;
// front = most recently used; tiny, so linear scan beats any map.
std::list<std::pair<CacheKey, CurveResult>>& cacheList() {
  static std::list<std::pair<CacheKey, CurveResult>> cache;
  return cache;
}
constexpr std::size_t kCacheCapacity = 4;

}  // namespace

void clearCurveCache() noexcept {
  const std::lock_guard<std::mutex> lock(gCacheMutex);
  cacheList().clear();
}

CurveResult computeCurve(const core::CompiledProblem& problem,
                         const CurveOptions& options) {
  ROBUST_REQUIRE(options.samples > 0,
                 "computeCurve: samples must be positive");
  ROBUST_REQUIRE(options.gridPoints > 0,
                 "computeCurve: gridPoints must be positive");
  ROBUST_REQUIRE(options.confidence > 0.0 && options.confidence < 1.0,
                 "computeCurve: confidence must lie in (0, 1)");

  CacheKey key;
  if (options.useCache) {
    key.content = problemContentKey(problem);
    if (key.content != 0) {
      key.samples = options.samples;
      key.seed = options.seed;
      key.gridPoints = options.gridPoints;
      key.confidence = options.confidence;
      key.prune = options.prune;
      const std::lock_guard<std::mutex> lock(gCacheMutex);
      auto& cache = cacheList();
      for (auto it = cache.begin(); it != cache.end(); ++it) {
        if (it->first == key) {
          cache.splice(cache.begin(), cache, it);
          if (obs::enabled()) [[unlikely]] {
            static const obs::MetricId kHits =
                obs::counterId("curve.cache.hits");
            obs::addCounter(kHits);
          }
          CurveResult hit = cache.front().second;
          hit.cacheHit = true;
          return hit;
        }
      }
      if (obs::enabled()) [[unlikely]] {
        static const obs::MetricId kMisses =
            obs::counterId("curve.cache.misses");
        obs::addCounter(kMisses);
      }
    }
  }

  CurveResult result = CurveEngine::run(problem, options);

  if (options.useCache && key.content != 0) {
    const std::lock_guard<std::mutex> lock(gCacheMutex);
    auto& cache = cacheList();
    cache.emplace_front(key, result);
    while (cache.size() > kCacheCapacity) {
      cache.pop_back();
    }
  }
  return result;
}

std::string curveSectionJson(const CurveResult& result) {
  std::ostringstream out;
  out << "{\"schema\": \"robust.curve\", \"schema_version\": 1";
  out << ", \"samples\": " << result.samples;
  out << ", \"finite\": " << result.finiteRadii;
  out << ", \"seed\": " << result.seed;
  out << ", \"confidence\": ";
  appendJsonNumber(out, result.confidence);
  out << ", \"dkw_epsilon\": ";
  appendJsonNumber(out, result.dkwEpsilon);
  out << ", \"rho\": ";
  appendJsonNumber(out, result.rho);
  out << ", \"fast_lane\": " << (result.fastLane ? "true" : "false");
  out << ", \"cache_hit\": " << (result.cacheHit ? "true" : "false");
  out << ", \"points\": [";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const CurvePoint& p = result.points[i];
    out << (i == 0 ? "" : ", ");
    out << "{\"radius\": ";
    appendJsonNumber(out, p.radius);
    out << ", \"probability\": ";
    appendJsonNumber(out, p.probability);
    out << ", \"lower\": ";
    appendJsonNumber(out, p.lower);
    out << ", \"upper\": ";
    appendJsonNumber(out, p.upper);
    out << '}';
  }
  out << "]}";
  return out.str();
}

void appendCurveSection(obs::RunReport& report, const CurveResult& result) {
  report.sections.emplace_back("curve", curveSectionJson(result));
}

}  // namespace robust::curve
