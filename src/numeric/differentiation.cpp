#include "robust/numeric/differentiation.hpp"

#include <algorithm>
#include <cmath>

#include "robust/util/error.hpp"

namespace robust::num {

namespace {
double stepFor(double xi, double baseStep) {
  return baseStep * std::max(1.0, std::fabs(xi));
}
}  // namespace

Vec gradientFD(const ScalarField& f, std::span<const double> x,
               double baseStep) {
  ROBUST_REQUIRE(baseStep > 0.0, "gradientFD: step must be positive");
  Vec grad(x.size());
  Vec probe(x.begin(), x.end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double h = stepFor(x[i], baseStep);
    const double saved = probe[i];
    probe[i] = saved + h;
    const double fPlus = f(probe);
    probe[i] = saved - h;
    const double fMinus = f(probe);
    probe[i] = saved;
    grad[i] = (fPlus - fMinus) / (2.0 * h);
  }
  return grad;
}

Matrix hessianFD(const ScalarField& f, std::span<const double> x,
                 double baseStep) {
  ROBUST_REQUIRE(baseStep > 0.0, "hessianFD: step must be positive");
  const std::size_t n = x.size();
  Matrix hess(n, n);
  Vec probe(x.begin(), x.end());
  const double f0 = f(probe);

  // Diagonal: (f(x+h) - 2 f(x) + f(x-h)) / h^2.
  for (std::size_t i = 0; i < n; ++i) {
    const double h = stepFor(x[i], baseStep);
    const double saved = probe[i];
    probe[i] = saved + h;
    const double fp = f(probe);
    probe[i] = saved - h;
    const double fm = f(probe);
    probe[i] = saved;
    hess(i, i) = (fp - 2.0 * f0 + fm) / (h * h);
  }
  // Off-diagonal: four-point stencil, symmetrized.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double hi = stepFor(x[i], baseStep);
      const double hj = stepFor(x[j], baseStep);
      const double si = probe[i];
      const double sj = probe[j];
      probe[i] = si + hi;
      probe[j] = sj + hj;
      const double fpp = f(probe);
      probe[j] = sj - hj;
      const double fpm = f(probe);
      probe[i] = si - hi;
      const double fmm = f(probe);
      probe[j] = sj + hj;
      const double fmp = f(probe);
      probe[i] = si;
      probe[j] = sj;
      const double value = (fpp - fpm - fmp + fmm) / (4.0 * hi * hj);
      hess(i, j) = value;
      hess(j, i) = value;
    }
  }
  return hess;
}

double directionalDerivativeFD(const ScalarField& f, std::span<const double> x,
                               std::span<const double> d, double baseStep) {
  ROBUST_REQUIRE(x.size() == d.size(),
                 "directionalDerivativeFD: dimension mismatch");
  const double dn = norm2(d);
  ROBUST_REQUIRE(dn > 0.0, "directionalDerivativeFD: zero direction");
  const double h = baseStep * std::max(1.0, norm2(x)) / dn;
  Vec plus(x.begin(), x.end());
  Vec minus(x.begin(), x.end());
  axpy(h, d, plus);
  axpy(-h, d, minus);
  return (f(plus) - f(minus)) / (2.0 * h);
}

}  // namespace robust::num
