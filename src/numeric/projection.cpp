#include "robust/numeric/projection.hpp"

#include <algorithm>
#include <cmath>

#include "robust/util/error.hpp"

namespace robust::num {

namespace {

/// Projects `x` onto one halfspace in place. A zero normal is rejected at
/// the call boundary, so the division is safe.
void projectHalfspace(const Halfspace& h, Vec& x) {
  const double v = dot(h.normal, x);
  const bool violated = h.geq ? v < h.offset : v > h.offset;
  if (!violated) {
    return;
  }
  const double n2 = dot(h.normal, h.normal);
  axpy((h.offset - v) / n2, h.normal, x);
}

/// Projects `x` onto one block ball in place.
void projectBall(const BlockBall& b, Vec& x) {
  double sumSq = 0.0;
  for (std::size_t i = 0; i < b.center.size(); ++i) {
    const double d = x[b.offset + i] - b.center[i];
    sumSq += d * d;
  }
  const double dist = std::sqrt(sumSq);
  if (dist <= b.radius) {
    return;
  }
  const double scale = b.radius / dist;
  for (std::size_t i = 0; i < b.center.size(); ++i) {
    x[b.offset + i] = b.center[i] + (x[b.offset + i] - b.center[i]) * scale;
  }
}

double ballViolation(const BlockBall& b, std::span<const double> x) {
  double sumSq = 0.0;
  for (std::size_t i = 0; i < b.center.size(); ++i) {
    const double d = x[b.offset + i] - b.center[i];
    sumSq += d * d;
  }
  return std::max(0.0, std::sqrt(sumSq) - b.radius);
}

void validate(std::span<const Halfspace> halfspaces,
              std::span<const BlockBall> balls, std::size_t dim) {
  for (const Halfspace& h : halfspaces) {
    ROBUST_REQUIRE(h.normal.size() == dim,
                   "projection: halfspace dimension mismatch");
    ROBUST_REQUIRE(norm2(h.normal) > 0.0,
                   "projection: halfspace normal must be nonzero");
  }
  for (const BlockBall& b : balls) {
    ROBUST_REQUIRE(b.offset + b.center.size() <= dim,
                   "projection: ball block out of range");
    ROBUST_REQUIRE(b.radius >= 0.0,
                   "projection: ball radius must be non-negative");
  }
}

}  // namespace

double halfspaceViolation(const Halfspace& h, std::span<const double> x) {
  const double v = dot(h.normal, x);
  const double excess = h.geq ? h.offset - v : v - h.offset;
  return excess <= 0.0 ? 0.0 : excess / norm2(h.normal);
}

double maxViolation(std::span<const Halfspace> halfspaces,
                    std::span<const BlockBall> balls,
                    std::span<const double> x) {
  double worst = 0.0;
  for (const Halfspace& h : halfspaces) {
    worst = std::max(worst, halfspaceViolation(h, x));
  }
  for (const BlockBall& b : balls) {
    worst = std::max(worst, ballViolation(b, x));
  }
  return worst;
}

ProjectionResult projectOntoIntersection(std::span<const Halfspace> halfspaces,
                                         std::span<const double> x0,
                                         const ProjectionOptions& options) {
  validate(halfspaces, {}, x0.size());
  ProjectionResult result;
  result.point.assign(x0.begin(), x0.end());
  if (halfspaces.empty()) {
    result.converged = true;
    return result;
  }

  // Dykstra: one correction vector per set. For halfspaces the corrections
  // stay rank-one (a multiple of the normal), but the dense form keeps the
  // loop obvious and the sets are few (one violation boundary plus a
  // handful of capacity rows).
  std::vector<Vec> corrections(halfspaces.size(), Vec(x0.size(), 0.0));
  Vec before(x0.size());
  for (std::size_t it = 0; it < options.maxIterations; ++it) {
    for (std::size_t s = 0; s < halfspaces.size(); ++s) {
      for (std::size_t k = 0; k < result.point.size(); ++k) {
        before[k] = result.point[k] + corrections[s][k];
      }
      result.point = before;
      projectHalfspace(halfspaces[s], result.point);
      for (std::size_t k = 0; k < result.point.size(); ++k) {
        corrections[s][k] = before[k] - result.point[k];
      }
    }
    result.iterations = it + 1;
    result.residual = maxViolation(halfspaces, {}, result.point);
    if (result.residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  result.residual = maxViolation(halfspaces, {}, result.point);
  result.converged = result.residual <= options.tolerance;
  return result;
}

ProjectionResult feasiblePoint(std::span<const Halfspace> halfspaces,
                               std::span<const BlockBall> balls,
                               std::span<const double> start,
                               const ProjectionOptions& options) {
  validate(halfspaces, balls, start.size());
  ProjectionResult result;
  result.point.assign(start.begin(), start.end());
  for (std::size_t it = 0; it < options.maxIterations; ++it) {
    for (const Halfspace& h : halfspaces) {
      projectHalfspace(h, result.point);
    }
    for (const BlockBall& b : balls) {
      projectBall(b, result.point);
    }
    result.iterations = it + 1;
    result.residual = maxViolation(halfspaces, balls, result.point);
    if (result.residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  result.converged = result.residual <= options.tolerance;
  return result;
}

}  // namespace robust::num
