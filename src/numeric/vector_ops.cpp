#include "robust/numeric/vector_ops.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::num {

namespace {
void requireSameSize(std::span<const double> a, std::span<const double> b,
                     const char* who) {
  ROBUST_REQUIRE(a.size() == b.size(),
                 std::string(who) + ": dimension mismatch");
}
}  // namespace

double dot(std::span<const double> a, std::span<const double> b) {
  requireSameSize(a, b, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += a[i] * b[i];
  }
  return s;
}

double norm2(std::span<const double> a) {
  // Scaled accumulation avoids overflow/underflow for extreme magnitudes.
  double scale = 0.0;
  double ssq = 1.0;
  for (double x : a) {
    if (x != 0.0) {
      const double ax = std::fabs(x);
      if (scale < ax) {
        const double r = scale / ax;
        ssq = 1.0 + ssq * r * r;
        scale = ax;
      } else {
        const double r = ax / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double norm1(std::span<const double> a) {
  double s = 0.0;
  for (double x : a) {
    s += std::fabs(x);
  }
  return s;
}

double normInf(std::span<const double> a) {
  double m = 0.0;
  for (double x : a) {
    m = std::max(m, std::fabs(x));
  }
  return m;
}

double weightedNorm2(std::span<const double> a, std::span<const double> w) {
  requireSameSize(a, w, "weightedNorm2");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ROBUST_REQUIRE(w[i] >= 0.0, "weightedNorm2: negative weight");
    s += w[i] * a[i] * a[i];
  }
  return std::sqrt(s);
}

double distance2(std::span<const double> a, std::span<const double> b) {
  requireSameSize(a, b, "distance2");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

Vec add(std::span<const double> a, std::span<const double> b) {
  requireSameSize(a, b, "add");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
  return out;
}

Vec sub(std::span<const double> a, std::span<const double> b) {
  requireSameSize(a, b, "sub");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

Vec scale(std::span<const double> a, double s) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = s * a[i];
  }
  return out;
}

void axpy(double s, std::span<const double> x, std::span<double> y) {
  ROBUST_REQUIRE(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += s * x[i];
  }
}

Vec normalized(std::span<const double> a) {
  const double n = norm2(a);
  ROBUST_REQUIRE(n > 0.0, "normalized: zero vector");
  return scale(a, 1.0 / n);
}

bool approxEqual(std::span<const double> a, std::span<const double> b,
                 double tol) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) {
      return false;
    }
  }
  return true;
}

}  // namespace robust::num
