#include "robust/numeric/hyperplane.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::num {

double Hyperplane::signedDistance(std::span<const double> point) const {
  const double n = norm2(normal);
  ROBUST_REQUIRE(n > 0.0, "Hyperplane: zero normal");
  return (dot(normal, point) - offset) / n;
}

double Hyperplane::distance(std::span<const double> point) const {
  return std::fabs(signedDistance(point));
}

Vec Hyperplane::project(std::span<const double> point) const {
  const double n2 = dot(normal, normal);
  ROBUST_REQUIRE(n2 > 0.0, "Hyperplane: zero normal");
  const double t = (offset - dot(normal, point)) / n2;
  Vec out(point.begin(), point.end());
  axpy(t, normal, out);
  return out;
}

double Hyperplane::evaluate(std::span<const double> point) const {
  return dot(normal, point) - offset;
}

Hyperplane boundaryOfAffine(std::span<const double> weights, double constant,
                            double level) {
  ROBUST_REQUIRE(norm2(weights) > 0.0,
                 "boundaryOfAffine: impact function does not depend on the "
                 "perturbation parameter");
  return Hyperplane{Vec(weights.begin(), weights.end()), level - constant};
}

}  // namespace robust::num
