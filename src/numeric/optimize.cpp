#include "robust/numeric/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "robust/numeric/matrix.hpp"
#include "robust/numeric/root_find.hpp"
#include "robust/util/error.hpp"

namespace robust::num {

namespace {

/// Box-Muller standard normal draw (local helper; the library-grade sampler
/// lives in robust/random and is not a dependency of the numeric layer).
double normal01(Pcg32& rng) {
  const double u1 = rng.nextDoubleOpen();
  const double u2 = rng.nextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Isotropic random unit vector in R^n.
Vec randomDirection(Pcg32& rng, std::size_t n) {
  Vec d(n);
  double norm = 0.0;
  do {
    for (auto& di : d) {
      di = normal01(rng);
    }
    norm = norm2(d);
  } while (norm < 1e-12);
  return scale(d, 1.0 / norm);
}

Vec evalGradient(const NearestPointProblem& problem,
                 std::span<const double> x) {
  return problem.gradient ? problem.gradient(x) : gradientFD(problem.g, x);
}

/// Characteristic length scale of the problem, for termination thresholds.
double problemScale(const NearestPointProblem& problem) {
  return std::max(1.0, norm2(problem.origin));
}

}  // namespace

std::optional<double> crossingAlongRay(const ScalarField& g, double level,
                                       std::span<const double> origin,
                                       std::span<const double> direction,
                                       double searchLimit) {
  ROBUST_REQUIRE(origin.size() == direction.size(),
                 "crossingAlongRay: dimension mismatch");
  const double dnorm = norm2(direction);
  ROBUST_REQUIRE(dnorm > 0.0, "crossingAlongRay: zero direction");

  Vec probe(origin.begin(), origin.end());
  const auto h = [&](double t) {
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = origin[i] + t * direction[i];
    }
    return g(probe) - level;
  };

  const double h0 = h(0.0);
  if (h0 == 0.0) {
    return 0.0;
  }
  const double initial = std::max(1.0, norm2(origin)) * 1e-3 / dnorm;
  const auto bracket = expandBracket(h, 0.0, initial, searchLimit / dnorm);
  if (!bracket) {
    return std::nullopt;
  }
  const RootResult root = brent(h, bracket->first, bracket->second);
  return root.x * dnorm;
}

NearestPointResult kktNewton(const NearestPointProblem& problem,
                             const SolverOptions& options) {
  const std::size_t n = problem.origin.size();
  ROBUST_REQUIRE(n > 0, "kktNewton: empty perturbation vector");
  ROBUST_REQUIRE(static_cast<bool>(problem.g), "kktNewton: missing g");

  const double scaleLen = problemScale(problem);
  const double gOrig = problem.g(problem.origin);

  NearestPointResult result;
  result.method = "kkt-newton";

  // Initial iterate: shoot along +/- grad g(origin) toward the level set; if
  // that ray never crosses, fall back to the linearized projection.
  Vec x(problem.origin);
  {
    Vec g0 = evalGradient(problem, problem.origin);
    const double g0norm = norm2(g0);
    if (g0norm > 0.0) {
      const double sign = problem.level > gOrig ? 1.0 : -1.0;
      const Vec dir = scale(g0, sign / g0norm);
      const auto t = crossingAlongRay(problem.g, problem.level, problem.origin,
                                      dir, options.searchLimit);
      if (t) {
        axpy(*t, dir, x);
      } else {
        // Linearized: x = origin + (level - g(origin)) * g0 / ||g0||^2.
        axpy((problem.level - gOrig) / (g0norm * g0norm), g0, x);
      }
    }
  }

  Vec grad = evalGradient(problem, x);
  double gradNorm2 = dot(grad, grad);
  double nu = gradNorm2 > 0.0
                  ? dot(grad, sub(problem.origin, x)) / gradNorm2
                  : 0.0;

  auto residual = [&](std::span<const double> xi, double nui,
                      std::span<const double> gradi) {
    Vec r(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = xi[i] - problem.origin[i] + nui * gradi[i];
    }
    r[n] = problem.g(xi) - problem.level;
    return r;
  };

  Vec res = residual(x, nu, grad);
  double resNorm = norm2(res);
  const double tol = options.tolerance * scaleLen;

  for (int iter = 0; iter < options.maxIterations; ++iter) {
    ++result.iterations;
    if (resNorm <= tol) {
      result.converged = true;
      break;
    }
    // Assemble the KKT Jacobian [[I + nu H, grad], [grad^T, 0]].
    const Matrix hess = hessianFD(problem.g, x);
    Matrix jac(n + 1, n + 1);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        jac(r, c) = nu * hess(r, c) + (r == c ? 1.0 : 0.0);
      }
      jac(r, n) = grad[r];
      jac(n, r) = grad[r];
    }
    jac(n, n) = 0.0;

    Vec rhs(n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      rhs[i] = -res[i];
    }
    Vec step;
    try {
      step = LuDecomposition(jac).solve(rhs);
    } catch (const ConvergenceError&) {
      break;  // singular KKT system; report best iterate as non-converged
    }

    // Backtracking line search on the KKT residual norm.
    double alpha = 1.0;
    bool accepted = false;
    for (int ls = 0; ls < 40; ++ls) {
      Vec xTrial(x);
      for (std::size_t i = 0; i < n; ++i) {
        xTrial[i] += alpha * step[i];
      }
      const double nuTrial = nu + alpha * step[n];
      Vec gradTrial = evalGradient(problem, xTrial);
      Vec resTrial = residual(xTrial, nuTrial, gradTrial);
      const double resTrialNorm = norm2(resTrial);
      if (resTrialNorm < (1.0 - 1e-4 * alpha) * resNorm) {
        x = std::move(xTrial);
        nu = nuTrial;
        grad = std::move(gradTrial);
        res = std::move(resTrial);
        resNorm = resTrialNorm;
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      break;  // stalled
    }
  }
  if (!result.converged && resNorm <= tol) {
    result.converged = true;
  }
  result.point = std::move(x);
  result.distance = distance2(result.point, problem.origin);
  if (!result.converged) {
    throw ConvergenceError("kktNewton: failed to reach tolerance", resNorm);
  }
  return result;
}

NearestPointResult raySearch(const NearestPointProblem& problem,
                             const SolverOptions& options) {
  const std::size_t n = problem.origin.size();
  ROBUST_REQUIRE(n > 0, "raySearch: empty perturbation vector");
  const double gOrig = problem.g(problem.origin);
  const double sign = problem.level > gOrig ? 1.0 : -1.0;

  NearestPointResult best;
  best.method = "ray-search";
  best.distance = std::numeric_limits<double>::infinity();

  Pcg32 rng(options.seed, /*stream=*/17);

  auto polish = [&](Vec direction) {
    // Fixed-point alignment: at the optimum, x* - origin is parallel to
    // grad g(x*) (KKT stationarity), so re-aim along the landed gradient.
    for (int iter = 0; iter < options.maxIterations; ++iter) {
      const auto t = crossingAlongRay(problem.g, problem.level, problem.origin,
                                      direction, options.searchLimit);
      if (!t) {
        return;
      }
      Vec point(problem.origin);
      axpy(*t, direction, point);
      if (*t < best.distance) {
        best.distance = *t;
        best.point = point;
        best.converged = true;
      }
      ++best.iterations;
      Vec grad = evalGradient(problem, point);
      const double gnorm = norm2(grad);
      if (gnorm <= 0.0) {
        return;
      }
      Vec aligned = scale(grad, sign / gnorm);
      if (distance2(aligned, direction) < options.tolerance) {
        return;  // fixed point reached
      }
      direction = std::move(aligned);
    }
  };

  // Deterministic start: the gradient direction at the origin.
  {
    Vec g0 = evalGradient(problem, problem.origin);
    const double g0norm = norm2(g0);
    if (g0norm > 0.0) {
      polish(scale(g0, sign / g0norm));
    }
  }
  // Random restarts guard against non-convex valleys and zero gradients.
  for (int r = 0; r < options.restarts; ++r) {
    polish(randomDirection(rng, n));
  }

  if (!best.converged) {
    throw ConvergenceError(
        "raySearch: no ray crossed the boundary within the search limit",
        std::numeric_limits<double>::infinity());
  }
  return best;
}

NearestPointResult monteCarloRadius(const NearestPointProblem& problem,
                                    const SolverOptions& options,
                                    const ScalarField& measure) {
  const std::size_t n = problem.origin.size();
  ROBUST_REQUIRE(n > 0, "monteCarloRadius: empty perturbation vector");

  NearestPointResult best;
  best.method = "monte-carlo";
  best.distance = std::numeric_limits<double>::infinity();
  Pcg32 rng(options.seed, /*stream=*/29);

  Vec displacement(n);
  for (int s = 0; s < options.samples; ++s) {
    const Vec direction = randomDirection(rng, n);
    const auto t = crossingAlongRay(problem.g, problem.level, problem.origin,
                                    direction, options.searchLimit);
    ++best.iterations;
    if (!t) {
      continue;
    }
    double length = *t;
    if (measure) {
      // crossingAlongRay returns the Euclidean length along the unit ray;
      // re-measure the displacement in the caller's norm.
      for (std::size_t i = 0; i < n; ++i) {
        displacement[i] = *t * direction[i];
      }
      length = measure(displacement);
    }
    if (length < best.distance) {
      best.distance = length;
      best.point = Vec(problem.origin);
      axpy(*t, direction, best.point);
      best.converged = true;
    }
  }
  if (!best.converged) {
    throw ConvergenceError(
        "monteCarloRadius: no sampled ray crossed the boundary",
        std::numeric_limits<double>::infinity());
  }
  return best;
}

NearestPointResult solveNearestPoint(const NearestPointProblem& problem,
                                     const SolverOptions& options) {
  // Newton can converge to a spurious KKT point when g is non-smooth (every
  // stationary point satisfies the system it solves), so the production
  // entry point always cross-checks with the multi-started ray search and
  // keeps the smaller distance.
  std::optional<NearestPointResult> newton;
  try {
    newton = kktNewton(problem, options);
  } catch (const ConvergenceError&) {
  }
  std::optional<NearestPointResult> ray;
  try {
    ray = raySearch(problem, options);
  } catch (const ConvergenceError&) {
  }
  if (newton && (!ray || newton->distance <= ray->distance)) {
    return *std::move(newton);
  }
  if (ray) {
    return *std::move(ray);
  }
  throw ConvergenceError(
      "solveNearestPoint: neither KKT-Newton nor ray search found the "
      "boundary",
      std::numeric_limits<double>::infinity());
}

}  // namespace robust::num
