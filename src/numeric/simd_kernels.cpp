// The radius micro-kernels behind robust/numeric/simd.hpp.
//
// This TU is compiled with -ffp-contract=off (see src/numeric/CMakeLists)
// so the compiler can never fuse the mul+add pairs below into FMAs: fusing
// would change rounding and break the bit-identity of Scalar vs Avx2
// results. The ROBUST_NATIVE CMake option additionally hands this TU (and
// only this TU) -mavx2 -mfma so the compiler may widen the scalar fallback
// too; the explicit lane schedule keeps the produced bits identical either
// way.
//
// Lane schedule (the determinism contract of every kernel): four
// accumulator lanes are fed in stride-4 element order —
//
//   lane k consumes elements k, k+4, k+8, ...
//
// — a partial final block feeds absent lanes a literal +0.0 product (the
// AVX2 path realizes this with a masked load; the scalar path replays it
// verbatim), and lanes reduce as (l0 + l2) + (l1 + l3). AVX2 realizes the
// same reduction as low128 + high128 followed by the in-register pair sum,
// which is the identical association.
#include "robust/numeric/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "robust/util/error.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ROBUST_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define ROBUST_SIMD_HAVE_AVX2 0
#endif

// An empty asm that pins the four lane accumulators to registers each
// iteration. This blocks auto-vectorization of the scalar kernels (so the
// Scalar target measures genuinely scalar code even when ROBUST_NATIVE
// hands this TU -mavx2) without touching the arithmetic: operation order
// and rounding follow the documented lane schedule either way.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ROBUST_LANES_BARRIER(l0, l1, l2, l3) \
  asm volatile("" : "+x"(l0), "+x"(l1), "+x"(l2), "+x"(l3))
#else
#define ROBUST_LANES_BARRIER(l0, l1, l2, l3) (void)0
#endif

namespace robust::num::simd {

namespace {

constexpr std::size_t kLanes = 4;

// ---------------------------------------------------------------------------
// Scalar lane-schedule kernels (the portable reference; also the fallback).
// ---------------------------------------------------------------------------

/// One row dot product in the fixed lane schedule.
double dotScalar(const double* a, const double* x, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc0 += a[i] * x[i];
    acc1 += a[i + 1] * x[i + 1];
    acc2 += a[i + 2] * x[i + 2];
    acc3 += a[i + 3] * x[i + 3];
    ROBUST_LANES_BARRIER(acc0, acc1, acc2, acc3);
  }
  if (full < n) {
    const std::size_t rem = n - full;
    // Absent lanes add a literal +0.0, exactly like the masked AVX2 load.
    acc0 += a[full] * x[full];
    acc1 += rem > 1 ? a[full + 1] * x[full + 1] : 0.0;
    acc2 += rem > 2 ? a[full + 2] * x[full + 2] : 0.0;
    acc3 += 0.0;
  }
  return (acc0 + acc2) + (acc1 + acc3);
}

double norm1Scalar(const double* a, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc0 += std::fabs(a[i]);
    acc1 += std::fabs(a[i + 1]);
    acc2 += std::fabs(a[i + 2]);
    acc3 += std::fabs(a[i + 3]);
    ROBUST_LANES_BARRIER(acc0, acc1, acc2, acc3);
  }
  if (full < n) {
    const std::size_t rem = n - full;
    acc0 += std::fabs(a[full]);
    acc1 += rem > 1 ? std::fabs(a[full + 1]) : 0.0;
    acc2 += rem > 2 ? std::fabs(a[full + 2]) : 0.0;
    acc3 += 0.0;
  }
  return (acc0 + acc2) + (acc1 + acc3);
}

double sumSquaresScalar(const double* a, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc0 += a[i] * a[i];
    acc1 += a[i + 1] * a[i + 1];
    acc2 += a[i + 2] * a[i + 2];
    acc3 += a[i + 3] * a[i + 3];
    ROBUST_LANES_BARRIER(acc0, acc1, acc2, acc3);
  }
  if (full < n) {
    const std::size_t rem = n - full;
    acc0 += a[full] * a[full];
    acc1 += rem > 1 ? a[full + 1] * a[full + 1] : 0.0;
    acc2 += rem > 2 ? a[full + 2] * a[full + 2] : 0.0;
    acc3 += 0.0;
  }
  return (acc0 + acc2) + (acc1 + acc3);
}

double normInfScalar(const double* a, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    m0 = std::max(m0, std::fabs(a[i]));
    m1 = std::max(m1, std::fabs(a[i + 1]));
    m2 = std::max(m2, std::fabs(a[i + 2]));
    m3 = std::max(m3, std::fabs(a[i + 3]));
    ROBUST_LANES_BARRIER(m0, m1, m2, m3);
  }
  for (std::size_t i = full; i < n; ++i) {
    m0 = std::max(m0, std::fabs(a[i]));  // max is order-independent
  }
  return std::max(std::max(m0, m2), std::max(m1, m3));
}

#if ROBUST_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// AVX2 kernels: the same lane schedule, four lanes per ymm register.
// Compiled via function target attributes so the default (portable) build
// still carries them; activeTarget() gates execution on cpuid.
// ---------------------------------------------------------------------------

/// Sliding window over {-1,-1,-1,-1,0,0,0,0}: loading at offset 4-rem
/// yields a mask whose first `rem` lanes are active.
alignas(32) constexpr std::int64_t kMaskTable[8] = {-1, -1, -1, -1,
                                                    0,  0,  0,  0};

__attribute__((target("avx2"))) inline __m256i tailMask(std::size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + (kLanes - rem)));
}

/// (l0 + l2) + (l1 + l3): low128 + high128, then the in-register pair sum.
__attribute__((target("avx2"))) inline double reduceAdd(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);       // [l0, l1]
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // [l2, l3]
  const __m128d pair = _mm_add_pd(lo, hi);              // [l0+l2, l1+l3]
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

__attribute__((target("avx2"))) inline __m256d absPd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

__attribute__((target("avx2"))) double dotAvx2(const double* a,
                                               const double* x,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(x + i)));
  }
  if (full < n) {
    const __m256i mask = tailMask(n - full);
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(_mm256_maskload_pd(a + full, mask),
                                      _mm256_maskload_pd(x + full, mask)));
  }
  return reduceAdd(acc);
}

/// Four rows at once against a shared x: a register-blocked A.x tile.
__attribute__((target("avx2"))) void dotRows4Avx2(const double* r0,
                                                  const double* r1,
                                                  const double* r2,
                                                  const double* r3,
                                                  const double* x,
                                                  std::size_t n, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_loadu_pd(r0 + i), xv));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_loadu_pd(r1 + i), xv));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_loadu_pd(r2 + i), xv));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_loadu_pd(r3 + i), xv));
  }
  if (full < n) {
    const __m256i mask = tailMask(n - full);
    const __m256d xv = _mm256_maskload_pd(x + full, mask);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(_mm256_maskload_pd(r0 + full, mask),
                                         xv));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(_mm256_maskload_pd(r1 + full, mask),
                                         xv));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(_mm256_maskload_pd(r2 + full, mask),
                                         xv));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(_mm256_maskload_pd(r3 + full, mask),
                                         xv));
  }
  out[0] = reduceAdd(a0);
  out[1] = reduceAdd(a1);
  out[2] = reduceAdd(a2);
  out[3] = reduceAdd(a3);
}

__attribute__((target("avx2"))) double norm1Avx2(const double* a,
                                                 std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc = _mm256_add_pd(acc, absPd(_mm256_loadu_pd(a + i)));
  }
  if (full < n) {
    acc = _mm256_add_pd(
        acc, absPd(_mm256_maskload_pd(a + full, tailMask(n - full))));
  }
  return reduceAdd(acc);
}

__attribute__((target("avx2"))) double sumSquaresAvx2(const double* a,
                                                      std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  if (full < n) {
    const __m256d v = _mm256_maskload_pd(a + full, tailMask(n - full));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  return reduceAdd(acc);
}

__attribute__((target("avx2"))) double normInfAvx2(const double* a,
                                                   std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t full = n / kLanes * kLanes;
  for (std::size_t i = 0; i < full; i += kLanes) {
    acc = _mm256_max_pd(acc, absPd(_mm256_loadu_pd(a + i)));
  }
  if (full < n) {
    acc = _mm256_max_pd(
        acc, absPd(_mm256_maskload_pd(a + full, tailMask(n - full))));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  return std::max(_mm_cvtsd_f64(pair),
                  _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair)));
}

bool cpuHasAvx2() {
  return __builtin_cpu_supports("avx2") != 0;
}

#else

bool cpuHasAvx2() { return false; }

#endif  // ROBUST_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Target resolveInitialTarget() {
  const Target preferred = cpuHasAvx2() ? Target::Avx2 : Target::Scalar;
  if (const char* env = std::getenv("ROBUST_SIMD")) {
    const std::string_view v(env);
    if (v == "scalar") {
      return Target::Scalar;
    }
    if (v == "avx2") {
      return preferred;  // honoured only when actually available
    }
  }
  return preferred;
}

std::atomic<int>& targetStore() noexcept {
  static std::atomic<int> target{static_cast<int>(resolveInitialTarget())};
  return target;
}

}  // namespace

const char* toString(Target target) noexcept {
  return target == Target::Avx2 ? "avx2" : "scalar";
}

bool avx2Available() noexcept { return cpuHasAvx2(); }

Target activeTarget() noexcept {
  return static_cast<Target>(targetStore().load(std::memory_order_relaxed));
}

void setTarget(Target target) noexcept {
  if (target == Target::Avx2 && !avx2Available()) {
    target = Target::Scalar;
  }
  targetStore().store(static_cast<int>(target), std::memory_order_relaxed);
}

double dotBlocked(std::span<const double> a, std::span<const double> x) {
  ROBUST_REQUIRE(a.size() == x.size(), "dotBlocked: dimension mismatch");
#if ROBUST_SIMD_HAVE_AVX2
  if (activeTarget() == Target::Avx2) {
    return dotAvx2(a.data(), x.data(), a.size());
  }
#endif
  return dotScalar(a.data(), x.data(), a.size());
}

void dotRowsBlocked(const double* rowMajor, std::size_t rows,
                    std::span<const double> x, double* out) {
  const std::size_t dim = x.size();
#if ROBUST_SIMD_HAVE_AVX2
  if (activeTarget() == Target::Avx2) {
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
      const double* base = rowMajor + r * dim;
      dotRows4Avx2(base, base + dim, base + 2 * dim, base + 3 * dim, x.data(),
                   dim, out + r);
    }
    for (; r < rows; ++r) {
      out[r] = dotAvx2(rowMajor + r * dim, x.data(), dim);
    }
    return;
  }
#endif
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dotScalar(rowMajor + r * dim, x.data(), dim);
  }
}

double norm1Blocked(std::span<const double> a) {
#if ROBUST_SIMD_HAVE_AVX2
  if (activeTarget() == Target::Avx2) {
    return norm1Avx2(a.data(), a.size());
  }
#endif
  return norm1Scalar(a.data(), a.size());
}

double norm2Blocked(std::span<const double> a) {
#if ROBUST_SIMD_HAVE_AVX2
  if (activeTarget() == Target::Avx2) {
    return std::sqrt(sumSquaresAvx2(a.data(), a.size()));
  }
#endif
  return std::sqrt(sumSquaresScalar(a.data(), a.size()));
}

double normInfBlocked(std::span<const double> a) {
#if ROBUST_SIMD_HAVE_AVX2
  if (activeTarget() == Target::Avx2) {
    return normInfAvx2(a.data(), a.size());
  }
#endif
  return normInfScalar(a.data(), a.size());
}

}  // namespace robust::num::simd
