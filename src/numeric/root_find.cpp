#include "robust/numeric/root_find.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "robust/obs/metrics.hpp"
#include "robust/util/error.hpp"

namespace robust::num {

namespace {

/// Publishes one finished root search (call count + iterations consumed) to
/// the obs counters. The iteration totals are the paper's "boundary probe"
/// work unit: each iteration is one objective evaluation on the ray.
void noteRootSearch(obs::MetricId calls, obs::MetricId iterations,
                    int consumed) noexcept {
  obs::addCounter(calls);
  obs::addCounter(iterations, static_cast<std::uint64_t>(consumed));
}

obs::MetricId bisectCallsId() {
  static const obs::MetricId id = obs::counterId("num.bisect_calls");
  return id;
}
obs::MetricId bisectIterationsId() {
  static const obs::MetricId id = obs::counterId("num.bisect_iterations");
  return id;
}
obs::MetricId brentCallsId() {
  static const obs::MetricId id = obs::counterId("num.brent_calls");
  return id;
}
obs::MetricId brentIterationsId() {
  static const obs::MetricId id = obs::counterId("num.brent_iterations");
  return id;
}

/// Evaluates f(x) and fails fast on a non-finite result. Without this
/// guard a NaN objective silently defeats every sign test below (all NaN
/// comparisons are false), so the loops burn maxIterations and return a
/// garbage root instead of reporting the broken objective.
double checkedEval(const ScalarFn1D& f, double x, const char* who) {
  const double fx = f(x);
  if (!std::isfinite(fx)) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s: objective returned non-finite %g at x = %.17g",
                  who, fx, x);
    ROBUST_REQUIRE(false, std::string(buf));
  }
  return fx;
}

}  // namespace

std::optional<std::pair<double, double>> expandBracket(const ScalarFn1D& f,
                                                       double lo, double hi,
                                                       double limit,
                                                       int maxDoublings) {
  ROBUST_REQUIRE(hi > lo, "expandBracket: hi must exceed lo");
  double flo = checkedEval(f, lo, "expandBracket");
  double fhi = checkedEval(f, hi, "expandBracket");
  for (int i = 0; i < maxDoublings; ++i) {
    if (flo == 0.0) {
      return std::make_pair(lo, lo);
    }
    if (flo * fhi <= 0.0) {
      return std::make_pair(lo, hi);
    }
    if (hi >= limit) {
      return std::nullopt;
    }
    const double width = hi - lo;
    lo = hi;
    flo = fhi;
    hi = std::min(limit, hi + 2.0 * width);
    fhi = checkedEval(f, hi, "expandBracket");
  }
  return std::nullopt;
}

RootResult bisect(const ScalarFn1D& f, double lo, double hi,
                  const RootOptions& options) {
  double flo = checkedEval(f, lo, "bisect");
  double fhi = checkedEval(f, hi, "bisect");
  ROBUST_REQUIRE(flo * fhi <= 0.0, "bisect: interval does not bracket a root");
  RootResult result;
  for (int i = 0; i < options.maxIterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = checkedEval(f, mid, "bisect");
    ++result.iterations;
    if (std::fabs(fmid) <= options.fTol || (hi - lo) * 0.5 <= options.xTol) {
      result.x = mid;
      result.fx = fmid;
      if (obs::enabled()) [[unlikely]] {
        noteRootSearch(bisectCallsId(), bisectIterationsId(),
                       result.iterations);
      }
      return result;
    }
    if (flo * fmid <= 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.fx = checkedEval(f, result.x, "bisect");
  if (obs::enabled()) [[unlikely]] {
    noteRootSearch(bisectCallsId(), bisectIterationsId(), result.iterations);
  }
  return result;
}

RootResult brent(const ScalarFn1D& f, double lo, double hi,
                 const RootOptions& options) {
  double a = lo;
  double b = hi;
  double c = hi;
  double fa = checkedEval(f, a, "brent");
  double fb = checkedEval(f, b, "brent");
  ROBUST_REQUIRE(fa * fb <= 0.0, "brent: interval does not bracket a root");
  double fc = fb;
  double d = b - a;
  double e = d;
  RootResult result;

  for (int i = 0; i < options.maxIterations; ++i) {
    ++result.iterations;
    if ((fb > 0.0 && fc > 0.0) || (fb < 0.0 && fc < 0.0)) {
      // Root is bracketed by [a, b]; move c to the opposite side of b.
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    if (std::fabs(fc) < std::fabs(fb)) {
      // Keep b the best (smallest-residual) iterate.
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol1 =
        2.0 * std::numeric_limits<double>::epsilon() * std::fabs(b) +
        0.5 * options.xTol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || std::fabs(fb) <= options.fTol) {
      result.x = b;
      result.fx = fb;
      if (obs::enabled()) [[unlikely]] {
        noteRootSearch(brentCallsId(), brentIterationsId(),
                       result.iterations);
      }
      return result;
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation (secant when a == c).
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      }
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;  // interpolation accepted
        d = p / q;
      } else {
        d = xm;  // interpolation rejected; bisect
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::fabs(d) > tol1) {
      b += d;
    } else {
      b += xm > 0.0 ? tol1 : -tol1;
    }
    fb = checkedEval(f, b, "brent");
  }
  result.x = b;
  result.fx = fb;
  if (obs::enabled()) [[unlikely]] {
    noteRootSearch(brentCallsId(), brentIterationsId(), result.iterations);
  }
  return result;
}

}  // namespace robust::num
