#include "robust/numeric/matrix.hpp"

#include <cmath>
#include <numeric>

#include "robust/util/error.hpp"

namespace robust::num {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  ROBUST_REQUIRE(rows > 0 && cols > 0, "Matrix: dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Vec Matrix::multiply(std::span<const double> x) const {
  ROBUST_REQUIRE(x.size() == cols_, "Matrix::multiply: dimension mismatch");
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      s += (*this)(r, c) * x[c];
    }
    y[r] = s;
  }
  return y;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

LuDecomposition::LuDecomposition(Matrix a)
    : lu_(std::move(a)), perm_(lu_.rows()) {
  ROBUST_REQUIRE(lu_.rows() == lu_.cols(), "LU: matrix must be square");
  const std::size_t n = lu_.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest-magnitude entry in column k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw ConvergenceError("LU: matrix is numerically singular", best);
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
      permSign_ = -permSign_;
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      lu_(r, k) /= lu_(k, k);
      const double factor = lu_(r, k);
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vec LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  ROBUST_REQUIRE(b.size() == n, "LU::solve: dimension mismatch");
  Vec x(n);
  // Forward substitution with the permutation applied (L has unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) {
      s -= lu_(r, c) * x[c];
    }
    x[r] = s;
  }
  // Back substitution with U.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      s -= lu_(ri, c) * x[c];
    }
    x[ri] = s / lu_(ri, ri);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = permSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    det *= lu_(i, i);
  }
  return det;
}

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()) {
  ROBUST_REQUIRE(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double s = a(r, c);
      for (std::size_t k = 0; k < c; ++k) {
        s -= l_(r, k) * l_(c, k);
      }
      if (r == c) {
        if (s <= 0.0) {
          throw ConvergenceError("Cholesky: matrix is not positive definite",
                                 s);
        }
        l_(r, c) = std::sqrt(s);
      } else {
        l_(r, c) = s / l_(c, c);
      }
    }
  }
}

Vec CholeskyDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  ROBUST_REQUIRE(b.size() == n, "Cholesky::solve: dimension mismatch");
  Vec y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[r];
    for (std::size_t c = 0; c < r; ++c) {
      s -= l_(r, c) * y[c];
    }
    y[r] = s / l_(r, r);
  }
  Vec x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) {
      s -= l_(c, ri) * x[c];
    }
    x[ri] = s / l_(ri, ri);
  }
  return x;
}

}  // namespace robust::num
