#include "robust/hiperd/scenario_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

#include "robust/util/diagnostics.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {

namespace {

const char* kindTag(NodeKind kind) {
  switch (kind) {
    case NodeKind::Sensor:
      return "s";
    case NodeKind::Application:
      return "a";
    case NodeKind::Actuator:
      return "t";
  }
  return "?";
}

std::string preciseDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Whitespace-delimited token reader that tracks the 1-based line and
/// character column of every token it hands out, so each rejection can
/// name the exact place in the input.
class TokenReader {
 public:
  TokenReader(std::istream& is, const util::Diagnostics& diag,
              const core::InputPolicy& policy)
      : is_(is), diag_(diag), policy_(policy) {}

  /// Reads one token; fails with provenance on end of input.
  std::string next(const char* context) {
    int c = get();
    while (c != EOF && std::isspace(c) != 0) {
      c = get();
    }
    if (c == EOF) {
      diag_.fail(util::RejectCategory::Truncated, line_, column_ + 1,
                 std::string("unexpected end of input while reading ") +
                     context);
    }
    tokenLine_ = line_;
    tokenColumn_ = column_;
    std::string t;
    while (c != EOF && std::isspace(c) == 0) {
      t.push_back(static_cast<char>(c));
      c = get();
    }
    return t;
  }

  /// Reads a numeric token and applies the finiteness policy.
  double number(const char* context) {
    const std::string t = next(context);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') {
      fail(util::RejectCategory::Format,
         std::string(context) + " '" + t + "' is not a number");
    }
    if (policy_.requireFinite && !std::isfinite(v)) {
      fail(util::RejectCategory::Domain,
         std::string(context) + " '" + t + "' is not finite");
    }
    return v;
  }

  /// number() plus a non-negativity domain check (under the policy).
  double nonNegative(const char* context) {
    const double v = number(context);
    if (policy_.requireDomainSigns && v < 0.0) {
      fail(util::RejectCategory::Domain,
         std::string(context) + " '" + util::formatValue(v) +
           "' is negative");
    }
    return v;
  }

  /// number() plus a strict-positivity domain check (under the policy).
  double positive(const char* context) {
    const double v = number(context);
    if (policy_.requireDomainSigns && !(v > 0.0)) {
      fail(util::RejectCategory::Domain,
         std::string(context) + " '" + util::formatValue(v) +
           "' is not a finite positive value");
    }
    return v;
  }

  /// Reads a count; always bounded by the policy cap so a corrupt header
  /// cannot trigger a giant allocation or a near-endless parse loop.
  std::size_t count(const char* context) {
    const std::string t = next(context);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    const bool integral = end != t.c_str() && *end == '\0' && v >= 0.0 &&
                          std::isfinite(v) &&
                          v == static_cast<double>(static_cast<std::size_t>(v));
    if (!integral) {
      fail(util::RejectCategory::Format,
         std::string(context) + " '" + t + "' is not a count");
    }
    const auto n = static_cast<std::size_t>(v);
    if (n > policy_.maxDeclaredCount) {
      fail(util::RejectCategory::Domain,
         std::string(context) + " " + t + " is above the policy cap of " +
           std::to_string(policy_.maxDeclaredCount));
    }
    return n;
  }

  void keyword(const char* expected) {
    const std::string t = next(expected);
    if (t != expected) {
      fail(util::RejectCategory::Structure,
         std::string("expected '") + expected + "', got '" + t + "'");
    }
  }

  NodeKind kind(const char* context) {
    const std::string t = next(context);
    if (t == "s") {
      return NodeKind::Sensor;
    }
    if (t == "a") {
      return NodeKind::Application;
    }
    if (t == "t") {
      return NodeKind::Actuator;
    }
    fail(util::RejectCategory::Format,
         std::string("unknown node kind '") + t + "' for " + context +
         " (expected s, a, or t)");
  }

  /// Fails at the start of the most recently read token.
  [[noreturn]] void fail(util::RejectCategory category,
                         std::string message) const {
    diag_.fail(category, tokenLine_, tokenColumn_, std::move(message));
  }

 private:
  int get() {
    const int c = is_.get();
    if (c == '\n') {
      ++line_;
      column_ = 0;
    } else if (c != EOF) {
      ++column_;
    }
    return c;
  }

  std::istream& is_;
  const util::Diagnostics& diag_;
  const core::InputPolicy& policy_;
  std::size_t line_ = 1;
  std::size_t column_ = 0;  ///< characters consumed on the current line
  std::size_t tokenLine_ = 1;
  std::size_t tokenColumn_ = 1;
};

}  // namespace

void saveScenario(const HiperdScenario& scenario, std::ostream& os) {
  validateScenario(scenario);
  const SystemGraph& g = scenario.graph;
  const std::size_t sensors = g.sensorCount();

  for (const auto& perMachine : scenario.compute) {
    for (const auto& fn : perMachine) {
      ROBUST_REQUIRE(fn.isLinear(),
                     "saveScenario: only linear compute functions serialize");
    }
  }
  for (const auto& fn : scenario.comm) {
    ROBUST_REQUIRE(fn.isLinear(),
                   "saveScenario: only linear comm functions serialize");
  }

  os << "hiperd-scenario v1\n";
  os << "sensors " << sensors << '\n';
  for (std::size_t s = 0; s < sensors; ++s) {
    os << g.sensorName(s) << ' ' << preciseDouble(g.sensorRate(s)) << '\n';
  }
  os << "applications " << g.applicationCount() << '\n';
  for (std::size_t a = 0; a < g.applicationCount(); ++a) {
    os << g.applicationName(a) << '\n';
  }
  os << "actuators " << g.actuatorCount() << '\n';
  for (std::size_t t = 0; t < g.actuatorCount(); ++t) {
    os << g.actuatorName(t) << '\n';
  }
  os << "edges " << g.edgeCount() << '\n';
  for (std::size_t e = 0; e < g.edgeCount(); ++e) {
    const Edge& edge = g.edge(e);
    os << kindTag(edge.from.kind) << ' ' << edge.from.index << ' '
       << kindTag(edge.to.kind) << ' ' << edge.to.index << ' '
       << (edge.trigger ? 1 : 0) << '\n';
  }
  os << "machines " << scenario.machines << '\n';
  os << "lambda";
  for (double l : scenario.lambdaOrig) {
    os << ' ' << preciseDouble(l);
  }
  os << '\n';
  os << "latency_limits " << scenario.latencyLimits.size() << '\n';
  for (double limit : scenario.latencyLimits) {
    os << preciseDouble(limit) << '\n';
  }
  os << "compute\n";
  for (std::size_t a = 0; a < scenario.compute.size(); ++a) {
    for (std::size_t m = 0; m < scenario.compute[a].size(); ++m) {
      os << a << ' ' << m;
      for (double c : scenario.compute[a][m].coeffs()) {
        os << ' ' << preciseDouble(c);
      }
      os << '\n';
    }
  }
  os << "comm\n";
  for (std::size_t e = 0; e < scenario.comm.size(); ++e) {
    os << e;
    for (double c : scenario.comm[e].coeffs()) {
      os << ' ' << preciseDouble(c);
    }
    os << '\n';
  }
}

HiperdScenario loadScenario(std::istream& is, std::string_view source,
                            const core::InputPolicy& policy) {
  const util::Diagnostics diag{std::string(source)};
  TokenReader in(is, diag, policy);
  in.keyword("hiperd-scenario");
  in.keyword("v1");

  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;

  in.keyword("sensors");
  const std::size_t sensors = in.count("sensor count");
  for (std::size_t s = 0; s < sensors; ++s) {
    const std::string name = in.next("sensor name");
    // Rates are periodic output data rates; zero or negative would make
    // every throughput bound infinite or negative downstream.
    const double rate = in.positive("sensor rate");
    g.addSensor(name, rate);
  }
  in.keyword("applications");
  const std::size_t apps = in.count("application count");
  for (std::size_t a = 0; a < apps; ++a) {
    g.addApplication(in.next("application name"));
  }
  in.keyword("actuators");
  const std::size_t actuators = in.count("actuator count");
  for (std::size_t t = 0; t < actuators; ++t) {
    g.addActuator(in.next("actuator name"));
  }
  in.keyword("edges");
  const std::size_t edges = in.count("edge count");
  for (std::size_t e = 0; e < edges; ++e) {
    const NodeKind fromKind = in.kind("edge source kind");
    const auto fromIndex = in.count("edge source index");
    const NodeKind toKind = in.kind("edge target kind");
    const auto toIndex = in.count("edge target index");
    const auto trigger = in.count("edge trigger flag");
    if (trigger > 1) {
      in.fail(util::RejectCategory::Domain,
         "edge trigger flag must be 0 or 1");
    }
    try {
      g.addEdge(NodeRef{fromKind, fromIndex}, NodeRef{toKind, toIndex},
                trigger == 1);
    } catch (const util::ParseError&) {
      throw;
    } catch (const InvalidArgumentError& err) {
      in.fail(util::RejectCategory::Structure,
         std::string("invalid edge: ") + err.what());
    }
  }
  // Structural invariants — acyclicity, sensor fan-out, reachability — are
  // enforced here, at the boundary, so nothing cyclic or dangling survives
  // into analysis. Re-attribute the graph's own message to the input.
  try {
    g.finalize();
  } catch (const InvalidArgumentError& err) {
    diag.failInput(std::string("invalid scenario structure: ") + err.what());
  }

  in.keyword("machines");
  scenario.machines = in.count("machine count");

  in.keyword("lambda");
  scenario.lambdaOrig.resize(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    // Sensor loads are object counts; negative loads are meaningless.
    scenario.lambdaOrig[s] = in.nonNegative("lambda component");
  }

  in.keyword("latency_limits");
  const std::size_t limits = in.count("latency limit count");
  if (limits != g.paths().size()) {
    in.fail(util::RejectCategory::Structure,
              "stored latency-limit count " + std::to_string(limits) +
            " does not match the re-enumerated path count " +
            std::to_string(g.paths().size()));
  }
  scenario.latencyLimits.resize(limits);
  for (std::size_t k = 0; k < limits; ++k) {
    scenario.latencyLimits[k] = in.positive("latency limit");
  }

  in.keyword("compute");
  scenario.compute.assign(apps, {});
  for (std::size_t a = 0; a < apps; ++a) {
    scenario.compute[a].reserve(scenario.machines);
  }
  for (std::size_t row = 0; row < apps * scenario.machines; ++row) {
    const std::size_t a = in.count("compute app index");
    const std::size_t m = in.count("compute machine index");
    if (a >= apps || m >= scenario.machines) {
      in.fail(util::RejectCategory::Structure,
              "compute index (" + std::to_string(a) + ", " +
              std::to_string(m) + ") out of range");
    }
    if (scenario.compute[a].size() != m) {
      in.fail(util::RejectCategory::Structure,
              "compute rows out of order at app " + std::to_string(a) +
              ", machine " + std::to_string(m));
    }
    num::Vec coeffs(sensors);
    for (std::size_t s = 0; s < sensors; ++s) {
      coeffs[s] = in.nonNegative("compute coefficient");
    }
    scenario.compute[a].push_back(LoadFunction::linear(std::move(coeffs)));
  }

  in.keyword("comm");
  scenario.comm.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    const std::size_t id = in.count("comm edge index");
    if (id != e) {
      in.fail(util::RejectCategory::Structure,
              "comm rows out of order: expected edge " + std::to_string(e) +
              ", got " + std::to_string(id));
    }
    num::Vec coeffs(sensors);
    for (std::size_t s = 0; s < sensors; ++s) {
      coeffs[s] = in.nonNegative("comm coefficient");
    }
    scenario.comm.push_back(LoadFunction::linear(std::move(coeffs)));
  }

  try {
    validateScenario(scenario);
  } catch (const InvalidArgumentError& err) {
    diag.failInput(std::string("inconsistent scenario: ") + err.what());
  }
  return scenario;
}

}  // namespace robust::hiperd
