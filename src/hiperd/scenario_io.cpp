#include "robust/hiperd/scenario_io.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "robust/util/error.hpp"

namespace robust::hiperd {

namespace {

const char* kindTag(NodeKind kind) {
  switch (kind) {
    case NodeKind::Sensor:
      return "s";
    case NodeKind::Application:
      return "a";
    case NodeKind::Actuator:
      return "t";
  }
  return "?";
}

NodeKind parseKind(const std::string& tag) {
  if (tag == "s") {
    return NodeKind::Sensor;
  }
  if (tag == "a") {
    return NodeKind::Application;
  }
  if (tag == "t") {
    return NodeKind::Actuator;
  }
  throw InvalidArgumentError("loadScenario: unknown node kind '" + tag + "'");
}

std::string preciseDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Reads one whitespace token; throws with context on EOF.
std::string token(std::istream& is, const char* context) {
  std::string t;
  if (!(is >> t)) {
    throw InvalidArgumentError(
        std::string("loadScenario: unexpected end of input while reading ") +
        context);
  }
  return t;
}

double numToken(std::istream& is, const char* context) {
  const std::string t = token(is, context);
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  ROBUST_REQUIRE(end != t.c_str() && *end == '\0',
                 std::string("loadScenario: expected a number for ") +
                     context + ", got '" + t + "'");
  return v;
}

std::size_t sizeToken(std::istream& is, const char* context) {
  const double v = numToken(is, context);
  ROBUST_REQUIRE(v >= 0.0 && v == static_cast<double>(
                                      static_cast<std::size_t>(v)),
                 std::string("loadScenario: expected a count for ") + context);
  return static_cast<std::size_t>(v);
}

void expectKeyword(std::istream& is, const std::string& keyword) {
  const std::string t = token(is, keyword.c_str());
  ROBUST_REQUIRE(t == keyword, "loadScenario: expected '" + keyword +
                                   "', got '" + t + "'");
}

}  // namespace

void saveScenario(const HiperdScenario& scenario, std::ostream& os) {
  validateScenario(scenario);
  const SystemGraph& g = scenario.graph;
  const std::size_t sensors = g.sensorCount();

  for (const auto& perMachine : scenario.compute) {
    for (const auto& fn : perMachine) {
      ROBUST_REQUIRE(fn.isLinear(),
                     "saveScenario: only linear compute functions serialize");
    }
  }
  for (const auto& fn : scenario.comm) {
    ROBUST_REQUIRE(fn.isLinear(),
                   "saveScenario: only linear comm functions serialize");
  }

  os << "hiperd-scenario v1\n";
  os << "sensors " << sensors << '\n';
  for (std::size_t s = 0; s < sensors; ++s) {
    os << g.sensorName(s) << ' ' << preciseDouble(g.sensorRate(s)) << '\n';
  }
  os << "applications " << g.applicationCount() << '\n';
  for (std::size_t a = 0; a < g.applicationCount(); ++a) {
    os << g.applicationName(a) << '\n';
  }
  os << "actuators " << g.actuatorCount() << '\n';
  for (std::size_t t = 0; t < g.actuatorCount(); ++t) {
    os << g.actuatorName(t) << '\n';
  }
  os << "edges " << g.edgeCount() << '\n';
  for (std::size_t e = 0; e < g.edgeCount(); ++e) {
    const Edge& edge = g.edge(e);
    os << kindTag(edge.from.kind) << ' ' << edge.from.index << ' '
       << kindTag(edge.to.kind) << ' ' << edge.to.index << ' '
       << (edge.trigger ? 1 : 0) << '\n';
  }
  os << "machines " << scenario.machines << '\n';
  os << "lambda";
  for (double l : scenario.lambdaOrig) {
    os << ' ' << preciseDouble(l);
  }
  os << '\n';
  os << "latency_limits " << scenario.latencyLimits.size() << '\n';
  for (double limit : scenario.latencyLimits) {
    os << preciseDouble(limit) << '\n';
  }
  os << "compute\n";
  for (std::size_t a = 0; a < scenario.compute.size(); ++a) {
    for (std::size_t m = 0; m < scenario.compute[a].size(); ++m) {
      os << a << ' ' << m;
      for (double c : scenario.compute[a][m].coeffs()) {
        os << ' ' << preciseDouble(c);
      }
      os << '\n';
    }
  }
  os << "comm\n";
  for (std::size_t e = 0; e < scenario.comm.size(); ++e) {
    os << e;
    for (double c : scenario.comm[e].coeffs()) {
      os << ' ' << preciseDouble(c);
    }
    os << '\n';
  }
}

HiperdScenario loadScenario(std::istream& is) {
  expectKeyword(is, "hiperd-scenario");
  expectKeyword(is, "v1");

  HiperdScenario scenario;
  SystemGraph& g = scenario.graph;

  expectKeyword(is, "sensors");
  const std::size_t sensors = sizeToken(is, "sensor count");
  for (std::size_t s = 0; s < sensors; ++s) {
    const std::string name = token(is, "sensor name");
    const double rate = numToken(is, "sensor rate");
    g.addSensor(name, rate);
  }
  expectKeyword(is, "applications");
  const std::size_t apps = sizeToken(is, "application count");
  for (std::size_t a = 0; a < apps; ++a) {
    g.addApplication(token(is, "application name"));
  }
  expectKeyword(is, "actuators");
  const std::size_t actuators = sizeToken(is, "actuator count");
  for (std::size_t t = 0; t < actuators; ++t) {
    g.addActuator(token(is, "actuator name"));
  }
  expectKeyword(is, "edges");
  const std::size_t edges = sizeToken(is, "edge count");
  for (std::size_t e = 0; e < edges; ++e) {
    const NodeKind fromKind = parseKind(token(is, "edge source kind"));
    const auto fromIndex = sizeToken(is, "edge source index");
    const NodeKind toKind = parseKind(token(is, "edge target kind"));
    const auto toIndex = sizeToken(is, "edge target index");
    const auto trigger = sizeToken(is, "edge trigger flag");
    ROBUST_REQUIRE(trigger <= 1, "loadScenario: trigger flag must be 0 or 1");
    g.addEdge(NodeRef{fromKind, fromIndex}, NodeRef{toKind, toIndex},
              trigger == 1);
  }
  g.finalize();

  expectKeyword(is, "machines");
  scenario.machines = sizeToken(is, "machine count");

  expectKeyword(is, "lambda");
  scenario.lambdaOrig.resize(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    scenario.lambdaOrig[s] = numToken(is, "lambda component");
  }

  expectKeyword(is, "latency_limits");
  const std::size_t limits = sizeToken(is, "latency limit count");
  ROBUST_REQUIRE(limits == g.paths().size(),
                 "loadScenario: stored latency-limit count does not match "
                 "the re-enumerated path count");
  scenario.latencyLimits.resize(limits);
  for (std::size_t k = 0; k < limits; ++k) {
    scenario.latencyLimits[k] = numToken(is, "latency limit");
  }

  expectKeyword(is, "compute");
  scenario.compute.assign(apps, {});
  for (std::size_t a = 0; a < apps; ++a) {
    scenario.compute[a].reserve(scenario.machines);
  }
  for (std::size_t row = 0; row < apps * scenario.machines; ++row) {
    const std::size_t a = sizeToken(is, "compute app index");
    const std::size_t m = sizeToken(is, "compute machine index");
    ROBUST_REQUIRE(a < apps && m < scenario.machines,
                   "loadScenario: compute index out of range");
    ROBUST_REQUIRE(scenario.compute[a].size() == m,
                   "loadScenario: compute rows out of order");
    num::Vec coeffs(sensors);
    for (std::size_t s = 0; s < sensors; ++s) {
      coeffs[s] = numToken(is, "compute coefficient");
    }
    scenario.compute[a].push_back(LoadFunction::linear(std::move(coeffs)));
  }

  expectKeyword(is, "comm");
  scenario.comm.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    const std::size_t id = sizeToken(is, "comm edge index");
    ROBUST_REQUIRE(id == e, "loadScenario: comm rows out of order");
    num::Vec coeffs(sensors);
    for (std::size_t s = 0; s < sensors; ++s) {
      coeffs[s] = numToken(is, "comm coefficient");
    }
    scenario.comm.push_back(LoadFunction::linear(std::move(coeffs)));
  }

  validateScenario(scenario);
  return scenario;
}

}  // namespace robust::hiperd
