#include "robust/hiperd/graph.hpp"

#include <algorithm>
#include <deque>
#include <ostream>

#include "robust/util/error.hpp"

namespace robust::hiperd {

namespace {
/// Guard against path explosion in pathological graphs; the model targets
/// tens of paths (the paper's system has 19).
constexpr std::size_t kMaxPaths = 100000;
}  // namespace

std::size_t SystemGraph::addSensor(std::string name, double rate) {
  ROBUST_REQUIRE(!finalized_, "SystemGraph: already finalized");
  ROBUST_REQUIRE(rate > 0.0, "SystemGraph: sensor rate must be positive");
  sensors_.push_back(Sensor{std::move(name), rate});
  outOfSensor_.emplace_back();
  return sensors_.size() - 1;
}

std::size_t SystemGraph::addApplication(std::string name) {
  ROBUST_REQUIRE(!finalized_, "SystemGraph: already finalized");
  applications_.push_back(std::move(name));
  outOfApp_.emplace_back();
  inOfApp_.emplace_back();
  return applications_.size() - 1;
}

std::size_t SystemGraph::addActuator(std::string name) {
  ROBUST_REQUIRE(!finalized_, "SystemGraph: already finalized");
  actuators_.push_back(std::move(name));
  return actuators_.size() - 1;
}

std::size_t SystemGraph::addEdge(NodeRef from, NodeRef to, bool trigger) {
  ROBUST_REQUIRE(!finalized_, "SystemGraph: already finalized");
  const bool validShape =
      (from.kind == NodeKind::Sensor && to.kind == NodeKind::Application) ||
      (from.kind == NodeKind::Application &&
       to.kind == NodeKind::Application) ||
      (from.kind == NodeKind::Application && to.kind == NodeKind::Actuator);
  ROBUST_REQUIRE(validShape,
                 "SystemGraph: edges must be sensor->app, app->app, or "
                 "app->actuator");
  auto checkIndex = [&](const NodeRef& n) {
    switch (n.kind) {
      case NodeKind::Sensor:
        ROBUST_REQUIRE(n.index < sensors_.size(),
                       "SystemGraph: sensor index out of range");
        break;
      case NodeKind::Application:
        ROBUST_REQUIRE(n.index < applications_.size(),
                       "SystemGraph: application index out of range");
        break;
      case NodeKind::Actuator:
        ROBUST_REQUIRE(n.index < actuators_.size(),
                       "SystemGraph: actuator index out of range");
        break;
    }
  };
  checkIndex(from);
  checkIndex(to);
  ROBUST_REQUIRE(!(from.kind == NodeKind::Application &&
                   to.kind == NodeKind::Application &&
                   from.index == to.index),
                 "SystemGraph: self-loop");

  edges_.push_back(Edge{from, to, trigger});
  const std::size_t id = edges_.size() - 1;
  if (from.kind == NodeKind::Sensor) {
    outOfSensor_[from.index].push_back(id);
  } else {
    outOfApp_[from.index].push_back(id);
  }
  if (to.kind == NodeKind::Application) {
    inOfApp_[to.index].push_back(id);
  }
  return id;
}

void SystemGraph::requireFinalized() const {
  if (!finalized_) {
    throw StateError("SystemGraph: finalize() has not been called");
  }
}

void SystemGraph::checkAcyclic() const {
  // Kahn's algorithm on the application sub-graph (only app->app edges can
  // participate in a cycle).
  std::vector<std::size_t> indegree(applications_.size(), 0);
  for (const Edge& e : edges_) {
    if (e.from.kind == NodeKind::Application &&
        e.to.kind == NodeKind::Application) {
      ++indegree[e.to.index];
    }
  }
  std::deque<std::size_t> ready;
  for (std::size_t a = 0; a < applications_.size(); ++a) {
    if (indegree[a] == 0) {
      ready.push_back(a);
    }
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::size_t a = ready.front();
    ready.pop_front();
    ++visited;
    for (std::size_t eid : outOfApp_[a]) {
      const Edge& e = edges_[eid];
      if (e.to.kind == NodeKind::Application && --indegree[e.to.index] == 0) {
        ready.push_back(e.to.index);
      }
    }
  }
  ROBUST_REQUIRE(visited == applications_.size(),
                 "SystemGraph: application graph contains a cycle");
}

void SystemGraph::enumeratePaths() {
  paths_.clear();
  // Effective trigger flag: single-input applications always continue the
  // walk regardless of the stored flag.
  auto isTriggerEntry = [&](std::size_t edgeId) {
    const Edge& e = edges_[edgeId];
    ROBUST_REQUIRE(e.to.kind == NodeKind::Application,
                   "internal: trigger query on a non-application edge");
    return inOfApp_[e.to.index].size() < 2 || e.trigger;
  };

  struct Frame {
    std::vector<std::size_t> apps;
    std::vector<std::size_t> edges;
  };

  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    for (std::size_t firstEdge : outOfSensor_[s]) {
      // Iterative DFS over (entering edge) decisions.
      struct State {
        std::size_t enteringEdge;
        Frame frame;
      };
      std::vector<State> stack;
      stack.push_back(State{firstEdge, Frame{{}, {}}});
      while (!stack.empty()) {
        State state = std::move(stack.back());
        stack.pop_back();
        const Edge& entry = edges_[state.enteringEdge];
        Frame frame = std::move(state.frame);
        frame.edges.push_back(state.enteringEdge);

        const std::size_t app = entry.to.index;
        if (!isTriggerEntry(state.enteringEdge)) {
          // Update path: the multiple-input application receives the result.
          Path path;
          path.drivingSensor = s;
          path.apps = std::move(frame.apps);
          path.edges = std::move(frame.edges);
          path.kind = PathKind::Update;
          path.terminal = NodeRef{NodeKind::Application, app};
          paths_.push_back(std::move(path));
          ROBUST_REQUIRE(paths_.size() <= kMaxPaths,
                         "SystemGraph: path explosion");
          continue;
        }

        frame.apps.push_back(app);
        for (std::size_t eid : outOfApp_[app]) {
          const Edge& e = edges_[eid];
          if (e.to.kind == NodeKind::Actuator) {
            Path path;
            path.drivingSensor = s;
            path.apps = frame.apps;
            path.edges = frame.edges;
            path.edges.push_back(eid);
            path.kind = PathKind::Trigger;
            path.terminal = e.to;
            paths_.push_back(std::move(path));
            ROBUST_REQUIRE(paths_.size() <= kMaxPaths,
                           "SystemGraph: path explosion");
          } else {
            stack.push_back(State{eid, frame});
          }
        }
      }
    }
  }
}

void SystemGraph::computeReachability() {
  sensorReach_.assign(sensors_.size(),
                      std::vector<bool>(applications_.size(), false));
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    std::deque<std::size_t> frontier;
    for (std::size_t eid : outOfSensor_[s]) {
      const std::size_t app = edges_[eid].to.index;
      if (!sensorReach_[s][app]) {
        sensorReach_[s][app] = true;
        frontier.push_back(app);
      }
    }
    while (!frontier.empty()) {
      const std::size_t a = frontier.front();
      frontier.pop_front();
      for (std::size_t eid : outOfApp_[a]) {
        const Edge& e = edges_[eid];
        if (e.to.kind == NodeKind::Application &&
            !sensorReach_[s][e.to.index]) {
          sensorReach_[s][e.to.index] = true;
          frontier.push_back(e.to.index);
        }
      }
    }
  }
}

void SystemGraph::finalize() {
  ROBUST_REQUIRE(!finalized_, "SystemGraph: already finalized");
  ROBUST_REQUIRE(!sensors_.empty(), "SystemGraph: no sensors");
  ROBUST_REQUIRE(!applications_.empty(), "SystemGraph: no applications");

  for (std::size_t a = 0; a < applications_.size(); ++a) {
    ROBUST_REQUIRE(!inOfApp_[a].empty(),
                   "SystemGraph: application '" + applications_[a] +
                       "' has no input");
    if (inOfApp_[a].size() >= 2) {
      std::size_t triggers = 0;
      for (std::size_t eid : inOfApp_[a]) {
        if (edges_[eid].trigger) {
          ++triggers;
        }
      }
      ROBUST_REQUIRE(triggers == 1,
                     "SystemGraph: multiple-input application '" +
                         applications_[a] +
                         "' must have exactly one trigger input");
    }
  }
  checkAcyclic();
  computeReachability();

  // Every application must be reachable from some sensor.
  for (std::size_t a = 0; a < applications_.size(); ++a) {
    bool reached = false;
    for (std::size_t s = 0; s < sensors_.size() && !reached; ++s) {
      reached = sensorReach_[s][a];
    }
    ROBUST_REQUIRE(reached, "SystemGraph: application '" + applications_[a] +
                                "' unreachable from every sensor");
  }
  // Every application must drain into an actuator or a downstream
  // application; otherwise its trigger path would silently dead-end.
  for (std::size_t a = 0; a < applications_.size(); ++a) {
    ROBUST_REQUIRE(!outOfApp_[a].empty(),
                   "SystemGraph: application '" + applications_[a] +
                       "' has no output");
  }

  finalized_ = true;
  enumeratePaths();
}

const std::string& SystemGraph::sensorName(std::size_t i) const {
  ROBUST_REQUIRE(i < sensors_.size(), "sensorName: index out of range");
  return sensors_[i].name;
}

const std::string& SystemGraph::applicationName(std::size_t i) const {
  ROBUST_REQUIRE(i < applications_.size(),
                 "applicationName: index out of range");
  return applications_[i];
}

const std::string& SystemGraph::actuatorName(std::size_t i) const {
  ROBUST_REQUIRE(i < actuators_.size(), "actuatorName: index out of range");
  return actuators_[i];
}

double SystemGraph::sensorRate(std::size_t i) const {
  ROBUST_REQUIRE(i < sensors_.size(), "sensorRate: index out of range");
  return sensors_[i].rate;
}

const Edge& SystemGraph::edge(std::size_t id) const {
  ROBUST_REQUIRE(id < edges_.size(), "edge: id out of range");
  return edges_[id];
}

const std::vector<std::size_t>& SystemGraph::outEdgesOfApp(
    std::size_t app) const {
  ROBUST_REQUIRE(app < applications_.size(),
                 "outEdgesOfApp: index out of range");
  return outOfApp_[app];
}

const std::vector<std::size_t>& SystemGraph::inEdgesOfApp(
    std::size_t app) const {
  ROBUST_REQUIRE(app < applications_.size(),
                 "inEdgesOfApp: index out of range");
  return inOfApp_[app];
}

const std::vector<Path>& SystemGraph::paths() const {
  requireFinalized();
  return paths_;
}

bool SystemGraph::sensorReachesApp(std::size_t sensor, std::size_t app) const {
  requireFinalized();
  ROBUST_REQUIRE(sensor < sensors_.size() && app < applications_.size(),
                 "sensorReachesApp: index out of range");
  return sensorReach_[sensor][app];
}

std::vector<std::size_t> SystemGraph::appSuccessors(std::size_t app) const {
  ROBUST_REQUIRE(app < applications_.size(),
                 "appSuccessors: index out of range");
  std::vector<std::size_t> successors;
  for (std::size_t eid : outOfApp_[app]) {
    const Edge& e = edges_[eid];
    if (e.to.kind == NodeKind::Application) {
      successors.push_back(e.to.index);
    }
  }
  return successors;
}

void SystemGraph::writeDot(std::ostream& os) const {
  os << "digraph hiperd {\n  rankdir=LR;\n";
  for (std::size_t s = 0; s < sensors_.size(); ++s) {
    os << "  s" << s << " [shape=diamond,label=\"" << sensors_[s].name
       << "\"];\n";
  }
  for (std::size_t a = 0; a < applications_.size(); ++a) {
    os << "  a" << a << " [shape=circle,label=\"" << applications_[a]
       << "\"];\n";
  }
  for (std::size_t t = 0; t < actuators_.size(); ++t) {
    os << "  t" << t << " [shape=box,label=\"" << actuators_[t] << "\"];\n";
  }
  auto nodeId = [](const NodeRef& n) {
    const char prefix =
        n.kind == NodeKind::Sensor ? 's'
                                   : (n.kind == NodeKind::Application ? 'a'
                                                                      : 't');
    return std::string(1, prefix) + std::to_string(n.index);
  };
  for (const Edge& e : edges_) {
    os << "  " << nodeId(e.from) << " -> " << nodeId(e.to);
    if (e.to.kind == NodeKind::Application &&
        inOfApp_[e.to.index].size() >= 2 && !e.trigger) {
      os << " [style=dashed]";  // update input
    }
    os << ";\n";
  }
  os << "}\n";
}

}  // namespace robust::hiperd
