#include "robust/hiperd/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "robust/hiperd/compiled_scenario.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::hiperd {

Fig4Result runFig4(const Fig4Options& options) {
  ROBUST_REQUIRE(options.mappings > 0, "runFig4: no mappings requested");

  Fig4Result result;
  result.generated = generateScenario(options.scenario, options.seed);
  const HiperdScenario& scenario = result.generated.scenario;

  // Draw all mappings up front (cheap) so rows can be computed in parallel.
  result.mappings.reserve(options.mappings);
  for (std::size_t m = 0; m < options.mappings; ++m) {
    Pcg32 rng = makeStream(options.seed, /*id=*/(1u << 24) + m);
    result.mappings.push_back(sched::randomMapping(
        scenario.graph.applicationCount(), scenario.machines, rng));
  }

  // The robustness analysis shares one compiled scenario (the DAG-derived
  // structure is mapping-independent); only the slack metric still needs a
  // per-mapping HiperdSystem. One contiguous block of mappings per worker,
  // each with its own reusable workspace, keeps results bit-identical for
  // every thread count.
  const CompiledScenario compiled = scenario.compile();
  result.rows.resize(options.mappings);
  const std::size_t n = options.mappings;
  std::size_t workers =
      options.threads == 0 ? defaultThreadCount() : options.threads;
  workers = std::min(workers, n);
  std::vector<ScenarioWorkspace> workspaces(std::max<std::size_t>(workers, 1));
  parallelFor(
      0, workers,
      [&](std::size_t b) {
        const std::size_t lo = n * b / workers;
        const std::size_t hi = n * (b + 1) / workers;
        for (std::size_t m = lo; m < hi; ++m) {
          const HiperdSystem system(scenario, result.mappings[m]);
          Fig4Row row;
          row.slack = system.slack();
          const auto& report = compiled.analyze(result.mappings[m],
                                                workspaces[b]);
          row.robustness =
              std::isfinite(report.metric) ? report.metric : -1.0;
          const auto& binding = report.radii[report.bindingFeature];
          row.bindingFeature = binding.feature;
          row.lambdaStar = binding.boundaryPoint;
          result.rows[m] = row;
        }
      },
      workers);
  return result;
}

std::pair<std::size_t, std::size_t> findTable2Pair(
    const std::vector<Fig4Row>& rows, double slackTolerance,
    double minRobustness) {
  ROBUST_REQUIRE(rows.size() >= 2, "findTable2Pair: need at least two rows");

  // Sort indices by slack; eligible pairs are then slack-adjacent windows.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows[a].slack < rows[b].slack;
  });

  double bestRatio = 0.0;
  std::pair<std::size_t, std::size_t> best{0, 0};
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& a = rows[order[i]];
    if (a.robustness < minRobustness) {
      continue;
    }
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const auto& b = rows[order[j]];
      if (b.slack - a.slack > slackTolerance) {
        break;  // sorted: no further j can qualify
      }
      if (b.robustness < minRobustness) {
        continue;
      }
      const double ratio =
          std::max(a.robustness, b.robustness) /
          std::min(a.robustness, b.robustness);
      if (ratio > bestRatio) {
        bestRatio = ratio;
        if (a.robustness <= b.robustness) {
          best = {order[i], order[j]};
        } else {
          best = {order[j], order[i]};
        }
      }
    }
  }
  ROBUST_REQUIRE(bestRatio > 0.0,
                 "findTable2Pair: no pair with positive robustness within "
                 "the slack tolerance");
  return best;
}

}  // namespace robust::hiperd
