#include "robust/hiperd/system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/util/error.hpp"

namespace robust::hiperd {

void validateScenario(const HiperdScenario& scenario) {
  ROBUST_REQUIRE(scenario.graph.finalized(),
                 "HiperdScenario: graph must be finalized");
  ROBUST_REQUIRE(scenario.machines > 0, "HiperdScenario: no machines");
  ROBUST_REQUIRE(scenario.lambdaOrig.size() == scenario.graph.sensorCount(),
                 "HiperdScenario: lambdaOrig size != sensor count");
  ROBUST_REQUIRE(
      scenario.latencyLimits.size() == scenario.graph.paths().size(),
      "HiperdScenario: latencyLimits size != path count");
  for (double limit : scenario.latencyLimits) {
    ROBUST_REQUIRE(limit > 0.0, "HiperdScenario: non-positive latency limit");
  }
  ROBUST_REQUIRE(
      scenario.compute.size() == scenario.graph.applicationCount(),
      "HiperdScenario: compute size != application count");
  for (const auto& row : scenario.compute) {
    ROBUST_REQUIRE(row.size() == scenario.machines,
                   "HiperdScenario: compute row size != machine count");
  }
  ROBUST_REQUIRE(scenario.comm.size() == scenario.graph.edgeCount(),
                 "HiperdScenario: comm size != edge count");
}

HiperdSystem::HiperdSystem(const HiperdScenario& scenario,
                           sched::Mapping mapping)
    : scenario_(scenario), mapping_(std::move(mapping)) {
  validateScenario(scenario_);
  ROBUST_REQUIRE(mapping_.apps() == scenario_.graph.applicationCount() &&
                     mapping_.machines() == scenario_.machines,
                 "HiperdSystem: mapping does not match the scenario");

  const auto counts = mapping_.countPerMachine();
  factors_.resize(mapping_.apps());
  for (std::size_t i = 0; i < mapping_.apps(); ++i) {
    factors_[i] = multitaskFactor(counts[mapping_.machineOf(i)]);
  }

  // 1/R(a_i): tightest throughput bound over the paths containing the app.
  throughputBound_.assign(mapping_.apps(), 0.0);
  std::vector<double> maxRate(mapping_.apps(), 0.0);
  for (const Path& path : scenario_.graph.paths()) {
    const double rate = scenario_.graph.sensorRate(path.drivingSensor);
    for (std::size_t app : path.apps) {
      maxRate[app] = std::max(maxRate[app], rate);
    }
  }
  for (std::size_t i = 0; i < mapping_.apps(); ++i) {
    // Applications on no path (possible only in degenerate graphs) carry no
    // throughput constraint; encode as +inf bound.
    throughputBound_[i] = maxRate[i] > 0.0
                              ? 1.0 / maxRate[i]
                              : std::numeric_limits<double>::infinity();
  }
}

double HiperdSystem::factorOf(std::size_t app) const {
  ROBUST_REQUIRE(app < factors_.size(), "factorOf: app index out of range");
  return factors_[app];
}

double HiperdSystem::computationTime(std::size_t app,
                                     std::span<const double> lambda) const {
  ROBUST_REQUIRE(app < mapping_.apps(),
                 "computationTime: app index out of range");
  return factors_[app] *
         scenario_.compute[app][mapping_.machineOf(app)].evaluate(lambda);
}

double HiperdSystem::communicationTime(std::size_t edgeId,
                                       std::span<const double> lambda) const {
  ROBUST_REQUIRE(edgeId < scenario_.comm.size(),
                 "communicationTime: edge id out of range");
  return scenario_.comm[edgeId].evaluate(lambda);
}

double HiperdSystem::latency(std::size_t k,
                             std::span<const double> lambda) const {
  const auto& paths = scenario_.graph.paths();
  ROBUST_REQUIRE(k < paths.size(), "latency: path index out of range");
  const Path& path = paths[k];
  double total = 0.0;
  for (std::size_t app : path.apps) {
    total += computationTime(app, lambda);
  }
  for (std::size_t eid : path.edges) {
    total += communicationTime(eid, lambda);
  }
  return total;
}

double HiperdSystem::throughputBound(std::size_t app) const {
  ROBUST_REQUIRE(app < throughputBound_.size(),
                 "throughputBound: app index out of range");
  return throughputBound_[app];
}

std::vector<ConstraintStatus> HiperdSystem::constraints() const {
  std::vector<ConstraintStatus> result;
  const auto& graph = scenario_.graph;
  const auto& lambda = scenario_.lambdaOrig;

  for (std::size_t i = 0; i < mapping_.apps(); ++i) {
    if (!std::isfinite(throughputBound_[i])) {
      continue;
    }
    result.push_back(ConstraintStatus{
        ConstraintKind::Computation, "Tc(" + graph.applicationName(i) + ")",
        computationTime(i, lambda), throughputBound_[i]});
    for (std::size_t eid : graph.outEdgesOfApp(i)) {
      if (scenario_.comm[eid].isZero()) {
        continue;
      }
      const Edge& e = graph.edge(eid);
      const std::string toName = e.to.kind == NodeKind::Application
                                     ? graph.applicationName(e.to.index)
                                     : graph.actuatorName(e.to.index);
      result.push_back(ConstraintStatus{
          ConstraintKind::Communication,
          "Tn(" + graph.applicationName(i) + "->" + toName + ")",
          communicationTime(eid, lambda), throughputBound_[i]});
    }
  }
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    result.push_back(ConstraintStatus{ConstraintKind::Latency,
                                      "L_" + std::to_string(k),
                                      latency(k, lambda),
                                      scenario_.latencyLimits[k]});
  }
  return result;
}

double HiperdSystem::slack() const {
  double slackValue = 1.0;
  for (const ConstraintStatus& c : constraints()) {
    slackValue = std::min(slackValue, 1.0 - c.fraction());
  }
  return slackValue;
}

core::RobustnessAnalyzer HiperdSystem::toAnalyzer(
    core::AnalyzerOptions options) const {
  const auto& graph = scenario_.graph;
  std::vector<core::PerformanceFeature> features;

  // Computation-time throughput features (Eq. 10a).
  for (std::size_t i = 0; i < mapping_.apps(); ++i) {
    if (!std::isfinite(throughputBound_[i])) {
      continue;
    }
    const LoadFunction& fn = scenario_.compute[i][mapping_.machineOf(i)];
    if (fn.isZero()) {
      continue;  // no dependence on lambda: boundary unreachable
    }
    features.push_back(core::PerformanceFeature{
        "Tc(" + graph.applicationName(i) + ")", fn.impact(factors_[i]),
        core::ToleranceBounds::atMost(throughputBound_[i])});
  }
  // Communication-time throughput features (Eq. 10b).
  for (std::size_t i = 0; i < mapping_.apps(); ++i) {
    if (!std::isfinite(throughputBound_[i])) {
      continue;
    }
    for (std::size_t eid : graph.outEdgesOfApp(i)) {
      const LoadFunction& fn = scenario_.comm[eid];
      if (fn.isZero()) {
        continue;
      }
      const Edge& e = graph.edge(eid);
      const std::string toName = e.to.kind == NodeKind::Application
                                     ? graph.applicationName(e.to.index)
                                     : graph.actuatorName(e.to.index);
      features.push_back(core::PerformanceFeature{
          "Tn(" + graph.applicationName(i) + "->" + toName + ")",
          fn.impact(1.0),
          core::ToleranceBounds::atMost(throughputBound_[i])});
    }
  }
  // Path latency features (Eq. 10c). Linear members sum into one affine
  // impact; any general member makes the path impact a callable sum.
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    const Path& path = graph.paths()[k];
    bool allLinear = true;
    for (std::size_t app : path.apps) {
      allLinear &=
          scenario_.compute[app][mapping_.machineOf(app)].isLinear();
    }
    for (std::size_t eid : path.edges) {
      allLinear &= scenario_.comm[eid].isLinear();
    }
    core::ImpactFunction impact = [&]() -> core::ImpactFunction {
      if (allLinear) {
        num::Vec weights(scenario_.lambdaOrig.size(), 0.0);
        for (std::size_t app : path.apps) {
          num::axpy(factors_[app],
                    scenario_.compute[app][mapping_.machineOf(app)].coeffs(),
                    weights);
        }
        for (std::size_t eid : path.edges) {
          num::axpy(1.0, scenario_.comm[eid].coeffs(), weights);
        }
        return core::ImpactFunction::affine(std::move(weights), 0.0);
      }
      // General case: capture this system by reference (the analyzer's
      // lifetime is bounded by the system's in all call sites; documented).
      const std::size_t pathIndex = k;
      return core::ImpactFunction::callable(
          [this, pathIndex](std::span<const double> lambda) {
            return latency(pathIndex, lambda);
          });
    }();
    if (impact.isAffine() && num::norm2(impact.weights()) == 0.0) {
      continue;  // path latency does not depend on lambda
    }
    features.push_back(core::PerformanceFeature{
        "L_" + std::to_string(k), std::move(impact),
        core::ToleranceBounds::atMost(scenario_.latencyLimits[k])});
  }

  // Trivial single-subspace instance of the general perturbation model:
  // one discrete block, lambda (the sensor loads), Section 3.2 flooring.
  core::PerturbationSubspace lambda;
  lambda.name = "lambda (sensor loads)";
  lambda.origin = scenario_.lambdaOrig;
  lambda.norm = static_cast<int>(options.norm);
  lambda.normWeights = options.normWeights;
  lambda.discrete = true;
  lambda.units = "objects per data set";

  core::ProblemSpec spec;
  spec.features = std::move(features);
  spec.options = options;
  spec.subspaces.push_back(std::move(lambda));
  return core::RobustnessAnalyzer(std::move(spec));
}

core::RobustnessReport HiperdSystem::analyze(
    core::AnalyzerOptions options) const {
  return toAnalyzer(options).analyze();
}

}  // namespace robust::hiperd
