#include "robust/hiperd/slowdown.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::hiperd {

core::ProblemSpec slowdownSpec(const HiperdSystem& system,
                               core::AnalyzerOptions options) {
  const HiperdScenario& scenario = system.scenario();
  const sched::Mapping& mapping = system.mapping();
  const auto& graph = scenario.graph;
  const auto& lambda = scenario.lambdaOrig;
  const std::size_t machines = scenario.machines;

  std::vector<core::PerformanceFeature> features;

  // Throughput features: T_i^c(s) = s_{m(i)} * Tc_i(lambda_orig).
  for (std::size_t i = 0; i < mapping.apps(); ++i) {
    const double bound = system.throughputBound(i);
    if (!std::isfinite(bound)) {
      continue;
    }
    const double tc = system.computationTime(i, lambda);
    if (tc <= 0.0) {
      continue;  // no load dependence: speed cannot make it violate
    }
    num::Vec weights(machines, 0.0);
    weights[mapping.machineOf(i)] = tc;
    features.push_back(core::PerformanceFeature{
        "Tc(" + graph.applicationName(i) + ")",
        core::ImpactFunction::affine(std::move(weights), 0.0),
        core::ToleranceBounds::atMost(bound)});
  }

  // Latency features: sum of per-machine computation mass plus the constant
  // communication time of the traversed edges.
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    const Path& path = graph.paths()[k];
    num::Vec weights(machines, 0.0);
    for (std::size_t app : path.apps) {
      weights[mapping.machineOf(app)] += system.computationTime(app, lambda);
    }
    double commConstant = 0.0;
    for (std::size_t eid : path.edges) {
      commConstant += system.communicationTime(eid, lambda);
    }
    if (num::norm2(weights) == 0.0) {
      continue;  // latency independent of machine speeds
    }
    features.push_back(core::PerformanceFeature{
        "L_" + std::to_string(k),
        core::ImpactFunction::affine(std::move(weights), commConstant),
        core::ToleranceBounds::atMost(scenario.latencyLimits[k])});
  }

  ROBUST_REQUIRE(!features.empty(),
                 "slowdownAnalyzer: no feature depends on machine speed");

  core::PerturbationSubspace s;
  s.name = "s (machine slowdown factors)";
  s.origin = num::Vec(machines, 1.0);
  s.norm = static_cast<int>(options.norm);
  s.normWeights = options.normWeights;
  s.units = "x (multiple of assumed speed)";

  core::ProblemSpec spec;
  spec.features = std::move(features);
  spec.options = std::move(options);
  spec.subspaces.push_back(std::move(s));
  return spec;
}

core::RobustnessAnalyzer slowdownAnalyzer(const HiperdSystem& system,
                                          core::AnalyzerOptions options) {
  return core::RobustnessAnalyzer(slowdownSpec(system, std::move(options)));
}

}  // namespace robust::hiperd
