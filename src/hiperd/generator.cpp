#include "robust/hiperd/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"

namespace robust::hiperd {

namespace {

/// Edge list assembled before committing to a SystemGraph, so trigger flags
/// can be decided once the in-degree structure is known.
struct DraftEdge {
  NodeRef from;
  NodeRef to;
  bool trigger = true;
};

/// Builds one layered random DAG draw. Guaranteed to pass finalize():
/// layered edges are acyclic, every application gets an input (layer-1 apps
/// from sensors, deeper apps from shallower apps) and an output (deepest
/// apps to actuators), and each multi-input application gets exactly one
/// trigger input.
SystemGraph buildDag(const ScenarioOptions& options, Pcg32& rng) {
  const std::size_t apps = options.applications;
  const std::size_t layerCount = std::max<std::size_t>(1, options.layers);

  std::vector<std::size_t> layer(apps);
  for (std::size_t i = 0; i < apps; ++i) {
    layer[i] = 1 + rng.nextBounded(static_cast<std::uint32_t>(layerCount));
  }
  layer[0] = 1;  // guarantee a non-empty first layer
  const std::size_t deepest = *std::max_element(layer.begin(), layer.end());

  auto appsInLayersBelow = [&](std::size_t l) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < apps; ++i) {
      if (layer[i] < l) {
        out.push_back(i);
      }
    }
    return out;
  };
  auto appsInLayersAbove = [&](std::size_t l) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < apps; ++i) {
      if (layer[i] > l) {
        out.push_back(i);
      }
    }
    return out;
  };

  std::vector<DraftEdge> edges;
  std::set<std::pair<std::size_t, std::size_t>> appEdgeSet;  // app->app dedup
  std::vector<std::size_t> outDegree(apps, 0);

  auto sensorRef = [](std::size_t s) { return NodeRef{NodeKind::Sensor, s}; };
  auto appRef = [](std::size_t a) {
    return NodeRef{NodeKind::Application, a};
  };
  auto actuatorRef = [](std::size_t t) {
    return NodeRef{NodeKind::Actuator, t};
  };
  const auto sensorCount =
      static_cast<std::uint32_t>(options.sensorRates.size());
  const auto actuatorCount = static_cast<std::uint32_t>(options.actuators);

  // Input spine: every application gets exactly one input here.
  for (std::size_t i = 0; i < apps; ++i) {
    if (layer[i] == 1) {
      edges.push_back(
          DraftEdge{sensorRef(rng.nextBounded(sensorCount)), appRef(i)});
    } else {
      const auto below = appsInLayersBelow(layer[i]);
      if (below.empty()) {
        edges.push_back(
            DraftEdge{sensorRef(rng.nextBounded(sensorCount)), appRef(i)});
      } else {
        const std::size_t parent = below[rng.nextBounded(
            static_cast<std::uint32_t>(below.size()))];
        edges.push_back(DraftEdge{appRef(parent), appRef(i)});
        appEdgeSet.emplace(parent, i);
        ++outDegree[parent];
      }
    }
  }
  // Output spine: every application with no output yet gets one.
  for (std::size_t i = 0; i < apps; ++i) {
    if (outDegree[i] > 0) {
      continue;
    }
    const auto above = appsInLayersAbove(layer[i]);
    if (layer[i] == deepest || above.empty()) {
      edges.push_back(
          DraftEdge{appRef(i), actuatorRef(rng.nextBounded(actuatorCount))});
    } else {
      const std::size_t child =
          above[rng.nextBounded(static_cast<std::uint32_t>(above.size()))];
      if (appEdgeSet.emplace(i, child).second) {
        edges.push_back(DraftEdge{appRef(i), appRef(child)});
      } else {
        edges.push_back(DraftEdge{
            appRef(i), actuatorRef(rng.nextBounded(actuatorCount))});
      }
    }
    ++outDegree[i];
  }
  // Extra merge/branch edges create multiple-input applications (update
  // paths) and path branching.
  for (std::size_t a = 0; a < apps; ++a) {
    for (std::size_t b = 0; b < apps; ++b) {
      if (layer[a] < layer[b] &&
          rng.nextDouble() < options.extraEdgeProbability &&
          !appEdgeSet.contains({a, b})) {
        appEdgeSet.emplace(a, b);
        edges.push_back(DraftEdge{appRef(a), appRef(b)});
        ++outDegree[a];
      }
    }
  }

  // Exactly one trigger input per multiple-input application.
  std::vector<std::vector<std::size_t>> inEdgesOf(apps);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (edges[e].to.kind == NodeKind::Application) {
      inEdgesOf[edges[e].to.index].push_back(e);
    }
  }
  for (std::size_t i = 0; i < apps; ++i) {
    if (inEdgesOf[i].size() < 2) {
      continue;
    }
    const std::size_t triggerSlot = inEdgesOf[i][rng.nextBounded(
        static_cast<std::uint32_t>(inEdgesOf[i].size()))];
    for (std::size_t e : inEdgesOf[i]) {
      edges[e].trigger = (e == triggerSlot);
    }
  }

  SystemGraph graph;
  for (std::size_t s = 0; s < options.sensorRates.size(); ++s) {
    graph.addSensor("s" + std::to_string(s + 1), options.sensorRates[s]);
  }
  for (std::size_t i = 0; i < apps; ++i) {
    graph.addApplication("a" + std::to_string(i + 1));
  }
  for (std::size_t t = 0; t < options.actuators; ++t) {
    graph.addActuator("act" + std::to_string(t + 1));
  }
  for (const DraftEdge& e : edges) {
    graph.addEdge(e.from, e.to, e.trigger);
  }
  graph.finalize();
  return graph;
}

}  // namespace

GeneratedScenario generateScenario(const ScenarioOptions& options,
                                   std::uint64_t seed) {
  ROBUST_REQUIRE(options.applications > 0 && options.machines > 0 &&
                     options.actuators > 0,
                 "generateScenario: counts must be positive");
  ROBUST_REQUIRE(options.sensorRates.size() == options.lambdaOrig.size() &&
                     !options.sensorRates.empty(),
                 "generateScenario: sensorRates/lambdaOrig mismatch");
  ROBUST_REQUIRE(options.latencySpread >= 0.0 && options.latencySpread < 1.0,
                 "generateScenario: latencySpread must lie in [0,1)");
  ROBUST_REQUIRE(options.targetThroughputUtil > 0.0 &&
                     options.targetThroughputUtil < 1.0 &&
                     options.targetLatencyUtil > 0.0 &&
                     options.targetLatencyUtil < 1.0,
                 "generateScenario: target utilizations must lie in (0,1)");

  GeneratedScenario result;

  // --- DAG: retry until the path count matches the target (Section 4.3's
  // 19 paths), keeping the closest draw as a fallback.
  std::optional<SystemGraph> best;
  std::size_t bestDiff = std::numeric_limits<std::size_t>::max();
  for (int attempt = 0; attempt < options.maxDagAttempts; ++attempt) {
    Pcg32 rng = makeStream(seed, static_cast<std::uint64_t>(attempt));
    SystemGraph graph = buildDag(options, rng);
    const std::size_t count = graph.paths().size();
    const std::size_t diff = count > options.targetPaths
                                 ? count - options.targetPaths
                                 : options.targetPaths - count;
    ++result.dagAttempts;
    if (diff < bestDiff) {
      bestDiff = diff;
      best = std::move(graph);
    }
    if (bestDiff == 0) {
      break;
    }
  }
  result.exactPathCount = bestDiff == 0;
  HiperdScenario& scenario = result.scenario;
  scenario.graph = std::move(*best);
  scenario.machines = options.machines;
  scenario.lambdaOrig = options.lambdaOrig;

  const std::size_t apps = options.applications;
  const std::size_t sensors = options.sensorRates.size();

  // --- Computation coefficients: CVB sampling with reachability zeros.
  Pcg32 rngCoeff = makeStream(seed, 1u << 20);
  std::vector<std::vector<num::Vec>> b(
      apps, std::vector<num::Vec>(options.machines, num::Vec(sensors, 0.0)));
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t z = 0; z < sensors; ++z) {
      if (!scenario.graph.sensorReachesApp(z, i)) {
        continue;  // b_ijz = 0: no route from sensor z to application a_i
      }
      const double central = rnd::gammaMeanCv(rngCoeff, options.coeffMean,
                                              options.taskHeterogeneity);
      for (std::size_t j = 0; j < options.machines; ++j) {
        b[i][j][z] = rnd::gammaMeanCv(rngCoeff, central,
                                      options.machineHeterogeneity);
      }
    }
  }

  // --- Communication coefficients (zero in the paper's experiments).
  Pcg32 rngComm = makeStream(seed, (1u << 20) + 1);
  std::vector<num::Vec> commCoeffs(scenario.graph.edgeCount(),
                                   num::Vec(sensors, 0.0));
  if (options.commCoeffMean > 0.0) {
    for (std::size_t e = 0; e < scenario.graph.edgeCount(); ++e) {
      const Edge& edge = scenario.graph.edge(e);
      if (edge.from.kind != NodeKind::Application) {
        continue;  // sensor injections carry no modeled transfer cost
      }
      for (std::size_t z = 0; z < sensors; ++z) {
        if (scenario.graph.sensorReachesApp(z, edge.from.index)) {
          commCoeffs[e][z] = rnd::gammaMeanCv(rngComm, options.commCoeffMean,
                                              options.taskHeterogeneity);
        }
      }
    }
  }

  // --- Calibration (documented substitution): scale coefficients so that
  // the round-robin reference mapping peaks at targetThroughputUtil.
  std::vector<double> maxRate(apps, 0.0);
  for (const Path& path : scenario.graph.paths()) {
    const double rate = scenario.graph.sensorRate(path.drivingSensor);
    for (std::size_t app : path.apps) {
      maxRate[app] = std::max(maxRate[app], rate);
    }
  }
  std::vector<std::size_t> refCounts(options.machines, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    ++refCounts[i % options.machines];
  }
  double peakUtil = 0.0;
  for (std::size_t i = 0; i < apps; ++i) {
    if (maxRate[i] <= 0.0) {
      continue;
    }
    const std::size_t j = i % options.machines;
    const double tc = multitaskFactor(refCounts[j]) *
                      num::dot(b[i][j], scenario.lambdaOrig);
    peakUtil = std::max(peakUtil, tc * maxRate[i]);  // tc / (1/rate)
  }
  const double coeffScale =
      peakUtil > 0.0 ? options.targetThroughputUtil / peakUtil : 1.0;
  result.coefficientScale = coeffScale;
  for (auto& perMachine : b) {
    for (auto& coeffs : perMachine) {
      for (double& c : coeffs) {
        c *= coeffScale;
      }
    }
  }
  for (auto& coeffs : commCoeffs) {
    for (double& c : coeffs) {
      c *= coeffScale;
    }
  }

  scenario.compute.resize(apps);
  for (std::size_t i = 0; i < apps; ++i) {
    scenario.compute[i].reserve(options.machines);
    for (std::size_t j = 0; j < options.machines; ++j) {
      scenario.compute[i].push_back(LoadFunction::linear(b[i][j]));
    }
  }
  scenario.comm.reserve(scenario.graph.edgeCount());
  for (std::size_t e = 0; e < scenario.graph.edgeCount(); ++e) {
    scenario.comm.push_back(LoadFunction::linear(commCoeffs[e]));
  }

  // --- Latency limits: centered on the reference mapping's nominal path
  // latencies at targetLatencyUtil, with the paper's relative spread.
  Pcg32 rngLimits = makeStream(seed, (1u << 20) + 2);
  const auto& paths = scenario.graph.paths();
  scenario.latencyLimits.resize(paths.size());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    double nominal = 0.0;
    for (std::size_t app : paths[k].apps) {
      const std::size_t j = app % options.machines;
      nominal += multitaskFactor(refCounts[j]) *
                 num::dot(b[app][j], scenario.lambdaOrig);
    }
    for (std::size_t eid : paths[k].edges) {
      nominal += num::dot(commCoeffs[eid], scenario.lambdaOrig);
    }
    // Degenerate all-zero path (possible only with empty update paths):
    // give it a unit-scale limit so the constraint is trivially satisfied.
    const double center = nominal > 0.0
                              ? nominal / options.targetLatencyUtil
                              : 1.0;
    scenario.latencyLimits[k] =
        center * rngLimits.uniform(1.0 - options.latencySpread,
                                   1.0 + options.latencySpread);
  }

  validateScenario(scenario);
  return result;
}

}  // namespace robust::hiperd
