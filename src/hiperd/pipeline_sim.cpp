#include "robust/hiperd/pipeline_sim.hpp"

#include <algorithm>

#include "robust/util/error.hpp"

namespace robust::hiperd {

std::vector<PathSimResult> simulatePaths(const HiperdSystem& system,
                                         std::span<const double> lambda,
                                         const PipelineSimOptions& options) {
  ROBUST_REQUIRE(options.dataSets >= 2,
                 "simulatePaths: need at least two data sets");
  const HiperdScenario& scenario = system.scenario();
  ROBUST_REQUIRE(lambda.size() == scenario.lambdaOrig.size(),
                 "simulatePaths: lambda dimension mismatch");

  std::vector<PathSimResult> results;
  const auto& paths = scenario.graph.paths();
  results.reserve(paths.size());

  for (std::size_t k = 0; k < paths.size(); ++k) {
    const Path& path = paths[k];
    PathSimResult result;
    result.path = k;

    const double period =
        1.0 / scenario.graph.sensorRate(path.drivingSensor);

    // Stage service times (applications) and inter-stage transfer delays
    // (every traversed edge, including the sensor and terminal hops).
    std::vector<double> service;
    service.reserve(path.apps.size());
    for (std::size_t app : path.apps) {
      const double s = system.computationTime(app, lambda);
      service.push_back(s);
      result.throughputViolated |= s > period;
    }
    double transferTotal = 0.0;
    for (std::size_t eid : path.edges) {
      transferTotal += system.communicationTime(eid, lambda);
    }

    // Tandem queue with deterministic arrivals (period) and FIFO stages.
    // completion[j] = completion time of the previous data set at stage j.
    std::vector<double> completion(service.size(), 0.0);
    result.latencies.reserve(options.dataSets);
    for (std::size_t n = 0; n < options.dataSets; ++n) {
      const double emitted = static_cast<double>(n) * period;
      double t = emitted;
      for (std::size_t j = 0; j < service.size(); ++j) {
        // Stage j starts when the data set arrives AND the stage is free.
        const double start = std::max(t, completion[j]);
        completion[j] = start + service[j];
        t = completion[j];
      }
      // Transfers are pure delays (links are not modeled as queues here;
      // the experiments' communication times are zero anyway).
      result.latencies.push_back(t + transferTotal - emitted);
    }

    result.steadyLatency = result.latencies.back();
    result.stable = !result.throughputViolated;
    if (options.dataSets >= 2) {
      const std::size_t n = options.dataSets;
      // Linear growth estimate over the second half (past warm-up).
      const double half = result.latencies[n / 2];
      result.growthRate =
          (result.latencies[n - 1] - half) /
          static_cast<double>(n - 1 - n / 2);
      if (result.growthRate < 1e-12) {
        result.growthRate = 0.0;
      }
    }
    result.latencyViolated =
        result.steadyLatency > scenario.latencyLimits[k] + 1e-12;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace robust::hiperd
