#include "robust/hiperd/compiled_scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "robust/core/analyzer.hpp"
#include "robust/numeric/simd.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::hiperd {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Dual norm of a weight row under the compiled norm, on the blocked
/// kernels (the metric lane's arithmetic; the full lane keeps the legacy
/// element-order loops).
double blockedDual(std::span<const double> row,
                   const core::AnalyzerOptions& options) {
  switch (options.norm) {
    case core::NormKind::L1:
      return num::simd::normInfBlocked(row);
    case core::NormKind::L2:
      return num::simd::norm2Blocked(row);
    case core::NormKind::LInf:
      return num::simd::norm1Blocked(row);
    case core::NormKind::Weighted: {
      double s = 0.0;
      for (std::size_t i = 0; i < row.size(); ++i) {
        s += row[i] * row[i] / options.normWeights[i];
      }
      return std::sqrt(s);
    }
  }
  return 0.0;  // unreachable
}

bool allNonNegative(std::span<const double> v) {
  for (double x : v) {
    if (x < 0.0) {
      return false;
    }
  }
  return true;
}
}  // namespace

CompiledScenario::CompiledScenario(const HiperdScenario& scenario,
                                   core::AnalyzerOptions options)
    : scenario_(&scenario), options_(std::move(options)) {
  validateScenario(scenario);
  const auto& graph = scenario.graph;
  sensors_ = graph.sensorCount();
  const std::size_t apps = graph.applicationCount();
  const std::size_t machines = scenario.machines;

  if (options_.norm == core::NormKind::Weighted) {
    ROBUST_REQUIRE(options_.normWeights.size() == sensors_,
                   "CompiledScenario: weighted norm requires one weight per "
                   "sensor load");
    for (double w : options_.normWeights) {
      ROBUST_REQUIRE(w > 0.0,
                     "CompiledScenario: norm weights must be positive");
    }
  }

  parameter_ = core::PerturbationParameter{
      "lambda (sensor loads)", scenario.lambdaOrig, /*discrete=*/true,
      "objects per data set"};

  // 1/R(a_i): tightest throughput bound over the paths containing the app
  // (the same derivation as HiperdSystem, which is mapping-independent).
  throughputBound_.assign(apps, 0.0);
  std::vector<double> maxRate(apps, 0.0);
  for (const Path& path : graph.paths()) {
    const double rate = graph.sensorRate(path.drivingSensor);
    for (std::size_t app : path.apps) {
      maxRate[app] = std::max(maxRate[app], rate);
    }
  }
  for (std::size_t i = 0; i < apps; ++i) {
    throughputBound_[i] = maxRate[i] > 0.0 ? 1.0 / maxRate[i] : kInf;
  }

  // The fast path needs every load function linear (any mapping then yields
  // an all-affine derivation) and the analytic solver.
  bool allLinear = true;
  computeZero_.assign(apps * machines, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t m = 0; m < machines; ++m) {
      const LoadFunction& fn = scenario.compute[i][m];
      allLinear &= fn.isLinear();
      computeZero_[i * machines + m] = fn.isZero() ? 1 : 0;
    }
  }
  commZero_.reserve(scenario.comm.size());
  for (const LoadFunction& fn : scenario.comm) {
    allLinear &= fn.isLinear();
    commZero_.push_back(fn.isZero() ? 1 : 0);
  }
  fast_ = allLinear && (options_.solver == core::SolverKind::Auto ||
                        options_.solver == core::SolverKind::Analytic);

  // Computation (Tc) lane: eligible apps and their interned names.
  for (std::size_t i = 0; i < apps; ++i) {
    if (!std::isfinite(throughputBound_[i])) {
      continue;
    }
    tcApps_.push_back(i);
    tcNames_.push_back("Tc(" + graph.applicationName(i) + ")");
  }

  // Communication (Tn) lane: mapping-independent, so on the fast path the
  // complete radius reports are solved here, once.
  for (std::size_t i = 0; i < apps; ++i) {
    if (!std::isfinite(throughputBound_[i])) {
      continue;
    }
    for (std::size_t eid : graph.outEdgesOfApp(i)) {
      const LoadFunction& fn = scenario.comm[eid];
      if (fn.isZero()) {
        continue;
      }
      const Edge& e = graph.edge(eid);
      const std::string toName = e.to.kind == NodeKind::Application
                                     ? graph.applicationName(e.to.index)
                                     : graph.actuatorName(e.to.index);
      const std::string name =
          "Tn(" + graph.applicationName(i) + "->" + toName + ")";
      core::RadiusReport report;
      if (fast_) {
        // The legacy impact is fn.impact(1.0) = affine(scale(coeffs, 1.0));
        // scaling by 1.0 is exact, so the raw coefficients give the same
        // bits.
        core::evaluateAffineRadius(
            core::AffineFeatureView{fn.coeffs(), 0.0, std::nullopt,
                                    throughputBound_[i]},
            scenario.lambdaOrig, options_, name, report);
      } else {
        report.feature = name;  // placeholder; the fallback path re-derives
      }
      tnReports_.push_back(std::move(report));
    }
  }

  // Latency (L) lane names.
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    latencyNames_.push_back("L_" + std::to_string(k));
  }

  // Metric-lane precompute (coeffs() is only meaningful on the all-linear
  // fast path; otherwise analyzeMetric falls back to the full analyze).
  if (fast_) {
    computeDot_.assign(apps * machines, 0.0);
    computeDual_.assign(apps * machines, 0.0);
    bool nonNegative = allNonNegative(scenario.lambdaOrig);
    for (std::size_t i = 0; i < apps; ++i) {
      for (std::size_t m = 0; m < machines; ++m) {
        const num::Vec& c = scenario.compute[i][m].coeffs();
        computeDot_[i * machines + m] =
            num::simd::dotBlocked(c, scenario.lambdaOrig);
        computeDual_[i * machines + m] = blockedDual(c, options_);
        nonNegative &= allNonNegative(c);
      }
    }
    commDot_.assign(scenario.comm.size(), 0.0);
    commDual_.assign(scenario.comm.size(), 0.0);
    for (std::size_t e = 0; e < scenario.comm.size(); ++e) {
      const num::Vec& c = scenario.comm[e].coeffs();
      commDot_[e] = num::simd::dotBlocked(c, scenario.lambdaOrig);
      commDual_[e] = blockedDual(c, options_);
      nonNegative &= allNonNegative(c);
    }
    latencyPruneSafe_ = nonNegative;
    for (std::size_t t = 0; t < tnReports_.size(); ++t) {
      if (tnReports_[t].radius < tnMinRadius_) {
        tnMinRadius_ = tnReports_[t].radius;
        tnArgmin_ = t;
      }
    }
  }
}

double CompiledScenario::throughputBound(std::size_t app) const {
  ROBUST_REQUIRE(app < throughputBound_.size(),
                 "throughputBound: app index out of range");
  return throughputBound_[app];
}

const num::Vec& CompiledScenario::computeCoeffs(std::size_t app,
                                                std::size_t machine) const {
  return scenario_->compute[app][machine].coeffs();
}

const core::RobustnessReport& CompiledScenario::analyze(
    const sched::Mapping& mapping, ScenarioWorkspace& workspace) const {
  const auto& graph = scenario_->graph;
  const std::size_t apps = graph.applicationCount();
  const std::size_t machines = scenario_->machines;
  ROBUST_REQUIRE(mapping.apps() == apps && mapping.machines() == machines,
                 "CompiledScenario: mapping does not match the scenario");

  const obs::Span span("hiperd.analyze");
  if (!fast_) {
    // Non-linear load functions or an iterative solver: delegate to the
    // legacy derivation (identical results, legacy cost).
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kFallback =
          obs::counterId("hiperd.analyze_fallback");
      obs::addCounter(kFallback);
    }
    workspace.report_ =
        HiperdSystem(*scenario_, mapping).toAnalyzer(options_).analyze();
    return workspace.report_;
  }

  // Multitasking factors for this mapping.
  workspace.counts_.assign(machines, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    ++workspace.counts_[mapping.machineOf(i)];
  }
  workspace.factors_.resize(apps);
  for (std::size_t i = 0; i < apps; ++i) {
    workspace.factors_[i] =
        multitaskFactor(workspace.counts_[mapping.machineOf(i)]);
  }

  core::RobustnessReport& report = workspace.report_;
  auto& radii = report.radii;
  std::size_t used = 0;
  report.metric = kInf;
  report.bindingFeature = 0;
  report.floored = false;
  const std::span<const double> origin = scenario_->lambdaOrig;

  const auto nextSlot = [&]() -> core::RadiusReport& {
    if (used == radii.size()) {
      radii.emplace_back();
    }
    return radii[used++];
  };
  const auto noteRadius = [&](const core::RadiusReport& r) {
    if (r.radius < report.metric) {
      report.metric = r.radius;
      report.bindingFeature = used - 1;
    }
  };

  // Computation (Tc) lane: weights = factor * compute coefficients.
  for (std::size_t t = 0; t < tcApps_.size(); ++t) {
    const std::size_t i = tcApps_[t];
    const std::size_t m = mapping.machineOf(i);
    if (computeZero_[i * machines + m]) {
      continue;  // no dependence on lambda: boundary unreachable
    }
    const num::Vec& coeffs = computeCoeffs(i, m);
    const double factor = workspace.factors_[i];
    std::span<const double> row = coeffs;
    if (factor != 1.0) {
      workspace.row_.resize(sensors_);
      for (std::size_t z = 0; z < sensors_; ++z) {
        workspace.row_[z] = coeffs[z] * factor;
      }
      row = workspace.row_;
    }  // factor == 1.0: coeffs * 1.0 is bitwise coeffs, use the row as-is
    core::RadiusReport& slot = nextSlot();
    core::evaluateAffineRadius(
        core::AffineFeatureView{row, 0.0, std::nullopt, throughputBound_[i]},
        origin, options_, tcNames_[t], slot);
    noteRadius(slot);
  }

  // Communication (Tn) lane: copy the pre-solved reports.
  for (const core::RadiusReport& tn : tnReports_) {
    core::RadiusReport& slot = nextSlot();
    slot = tn;
    noteRadius(slot);
  }

  // Latency (L) lane: per-path weights assembled in the legacy accumulation
  // order (per-app axpy with the multitask factor, then per-edge axpy), so
  // the floating-point sums match the legacy derivation bit for bit.
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    const Path& path = graph.paths()[k];
    workspace.row_.assign(sensors_, 0.0);
    for (std::size_t app : path.apps) {
      // Skipping an all-zero contribution is bit-safe: adding 1.0 * 0.0 (or
      // factor * 0.0) never changes an accumulated component's bits here.
      if (computeZero_[app * machines + mapping.machineOf(app)]) {
        continue;
      }
      num::axpy(workspace.factors_[app],
                computeCoeffs(app, mapping.machineOf(app)), workspace.row_);
    }
    for (std::size_t eid : path.edges) {
      if (commZero_[eid]) {
        continue;
      }
      num::axpy(1.0, scenario_->comm[eid].coeffs(), workspace.row_);
    }
    if (num::norm2(workspace.row_) == 0.0) {
      continue;  // path latency does not depend on lambda
    }
    core::RadiusReport& slot = nextSlot();
    core::evaluateAffineRadius(
        core::AffineFeatureView{workspace.row_, 0.0, std::nullopt,
                                scenario_->latencyLimits[k]},
        origin, options_, latencyNames_[k], slot);
    noteRadius(slot);
  }

  radii.resize(used);
  ROBUST_REQUIRE(used > 0, "CompiledScenario: at least one feature required");
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kFast = obs::counterId("hiperd.analyze_fast");
    static const obs::MetricId kRows =
        obs::counterId("hiperd.rows_evaluated");
    static const obs::MetricId kTn =
        obs::counterId("hiperd.tn_presolved_reused");
    obs::addCounter(kFast);
    obs::addCounter(kRows, used);
    obs::addCounter(kTn, tnReports_.size());
  }
  if (std::isfinite(report.metric)) {
    // Section 3.2: a discrete parameter's metric should not be fractional.
    report.metric = std::floor(report.metric);
    report.floored = true;
  }
  return report;
}

core::RobustnessReport CompiledScenario::analyze(
    const sched::Mapping& mapping) const {
  ScenarioWorkspace workspace;
  return analyze(mapping, workspace);
}

core::MetricResult CompiledScenario::analyzeMetric(
    const sched::Mapping& mapping, ScenarioWorkspace& workspace,
    bool prune) const {
  const auto& graph = scenario_->graph;
  const std::size_t apps = graph.applicationCount();
  const std::size_t machines = scenario_->machines;
  ROBUST_REQUIRE(mapping.apps() == apps && mapping.machines() == machines,
                 "CompiledScenario: mapping does not match the scenario");

  if (!fast_) {
    const core::RobustnessReport& full = analyze(mapping, workspace);
    return core::MetricResult{full.metric, full.bindingFeature, full.floored};
  }

  // Multitasking factors for this mapping (same derivation as analyze).
  workspace.counts_.assign(machines, 0);
  for (std::size_t i = 0; i < apps; ++i) {
    ++workspace.counts_[mapping.machineOf(i)];
  }
  workspace.factors_.resize(apps);
  for (std::size_t i = 0; i < apps; ++i) {
    workspace.factors_[i] =
        multitaskFactor(workspace.counts_[mapping.machineOf(i)]);
  }

  core::MetricResult result;
  result.metric = kInf;
  result.bindingFeature = 0;
  result.floored = false;
  std::size_t used = 0;
  std::size_t pruned = 0;
  const std::span<const double> origin = scenario_->lambdaOrig;

  const auto note = [&](double radius, std::size_t slot) {
    if (radius < result.metric) {
      result.metric = radius;
      result.bindingFeature = slot;
    }
  };

  // Computation (Tc) lane: f(lambda) = factor * (coeffs . lambda), and
  // ||factor * coeffs||_dual = factor * ||coeffs||_dual — the lane rescales
  // the two precomputed scalars instead of the whole row.
  for (std::size_t t = 0; t < tcApps_.size(); ++t) {
    const std::size_t i = tcApps_[t];
    const std::size_t m = mapping.machineOf(i);
    if (computeZero_[i * machines + m]) {
      continue;  // same slot accounting as analyze
    }
    const std::size_t slot = used++;
    const double factor = workspace.factors_[i];
    const double dot = computeDot_[i * machines + m];
    const double dual = computeDual_[i * machines + m];
    const double atOrigin = factor == 1.0 ? dot : factor * dot;
    const double deff = factor == 1.0 ? dual : factor * dual;
    const double bound = throughputBound_[i];
    if (atOrigin > bound) {
      note(0.0, slot);  // violated at the operating point
      continue;
    }
    ROBUST_REQUIRE(deff > 0.0,
                   "analytic radius: impact does not depend on the parameter");
    const double gap = std::fabs(atOrigin - bound);
    if (prune && result.metric < kInf &&
        gap > result.metric * deff * (1.0 + 1e-9)) {
      // Provable loser under the strict-< selection (the margin absorbs
      // the comparison rounding): skipping it changes no result bits.
      ++pruned;
      continue;
    }
    note(gap / deff, slot);
  }

  // Communication (Tn) lane: mapping-independent, pre-reduced at compile
  // time to (min radius, earliest argmin) — the strict-< walk over the
  // pre-solved reports collapses to one comparison.
  if (!tnReports_.empty()) {
    note(tnMinRadius_, used + tnArgmin_);
    used += tnReports_.size();
  }

  // Latency (L) lane. When the prune is sound (non-negative coefficients
  // and origin), the decomposed dot / part-dual sums both prove zero rows
  // (a zero part-dual sum means every contributing part is zero, exactly
  // matching analyze's norm2(row) == 0 skip) and bound the row's radius
  // from below: gap / partDualSum <= gap / ||row||_dual by the triangle
  // inequality. Rows surviving the bound are assembled exactly like
  // analyze and measured with the blocked kernels.
  for (std::size_t k = 0; k < graph.paths().size(); ++k) {
    const Path& path = graph.paths()[k];
    const double limit = scenario_->latencyLimits[k];
    if (latencyPruneSafe_) {
      double dotSum = 0.0;
      double magSum = 0.0;
      double partDualSum = 0.0;
      for (std::size_t app : path.apps) {
        const std::size_t m = mapping.machineOf(app);
        if (computeZero_[app * machines + m]) {
          continue;
        }
        const double term = workspace.factors_[app] * computeDot_[app * machines + m];
        dotSum += term;
        magSum += std::fabs(term);
        partDualSum +=
            workspace.factors_[app] * computeDual_[app * machines + m];
      }
      for (std::size_t eid : path.edges) {
        if (commZero_[eid]) {
          continue;
        }
        dotSum += commDot_[eid];
        magSum += std::fabs(commDot_[eid]);
        partDualSum += commDual_[eid];
      }
      if (partDualSum == 0.0) {
        continue;  // assembled row is provably all-zero: no slot
      }
      const std::size_t slot = used++;
      if (prune && result.metric < kInf) {
        // Absolute slack absorbing the decomposed dot's rounding relative
        // to its magnitude sum; the bound must also prove the assembled
        // row is NOT violated at the origin (a violated row's radius 0
        // always wins).
        const double slack = 1e-12 * (magSum + std::fabs(limit));
        if ((limit - dotSum) - slack >
            result.metric * partDualSum * (1.0 + 1e-9)) {
          ++pruned;
          continue;
        }
      }
      workspace.row_.assign(sensors_, 0.0);
      for (std::size_t app : path.apps) {
        if (computeZero_[app * machines + mapping.machineOf(app)]) {
          continue;
        }
        num::axpy(workspace.factors_[app],
                  computeCoeffs(app, mapping.machineOf(app)), workspace.row_);
      }
      for (std::size_t eid : path.edges) {
        if (commZero_[eid]) {
          continue;
        }
        num::axpy(1.0, scenario_->comm[eid].coeffs(), workspace.row_);
      }
      const double atOrigin = num::simd::dotBlocked(workspace.row_, origin);
      if (atOrigin > limit) {
        note(0.0, slot);
        continue;
      }
      const double deff = blockedDual(workspace.row_, options_);
      ROBUST_REQUIRE(
          deff > 0.0,
          "analytic radius: impact does not depend on the parameter");
      note(std::fabs(atOrigin - limit) / deff, slot);
    } else {
      // Cancellation possible: assemble every row; no pruning (so the
      // prune flag provably cannot change results here either).
      workspace.row_.assign(sensors_, 0.0);
      for (std::size_t app : path.apps) {
        if (computeZero_[app * machines + mapping.machineOf(app)]) {
          continue;
        }
        num::axpy(workspace.factors_[app],
                  computeCoeffs(app, mapping.machineOf(app)), workspace.row_);
      }
      for (std::size_t eid : path.edges) {
        if (commZero_[eid]) {
          continue;
        }
        num::axpy(1.0, scenario_->comm[eid].coeffs(), workspace.row_);
      }
      if (num::simd::normInfBlocked(workspace.row_) == 0.0) {
        continue;  // exactly analyze's norm2(row) == 0 skip
      }
      const std::size_t slot = used++;
      const double atOrigin = num::simd::dotBlocked(workspace.row_, origin);
      if (atOrigin > limit) {
        note(0.0, slot);
        continue;
      }
      const double deff = blockedDual(workspace.row_, options_);
      ROBUST_REQUIRE(
          deff > 0.0,
          "analytic radius: impact does not depend on the parameter");
      note(std::fabs(atOrigin - limit) / deff, slot);
    }
  }

  ROBUST_REQUIRE(used > 0, "CompiledScenario: at least one feature required");
  if (std::isfinite(result.metric)) {
    result.metric = std::floor(result.metric);
    result.floored = true;
  }
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kMetric =
        obs::counterId("hiperd.analyze_metric");
    static const obs::MetricId kScalar =
        obs::counterId("core.kernel.dispatch.scalar");
    static const obs::MetricId kAvx2 =
        obs::counterId("core.kernel.dispatch.avx2");
    static const obs::MetricId kSkipped =
        obs::counterId("core.prune.rows_skipped");
    static const obs::MetricId kEffectiveness =
        obs::gaugeId("core.prune.effectiveness");
    obs::addCounter(kMetric);
    obs::addCounter(num::simd::activeTarget() == num::simd::Target::Avx2
                        ? kAvx2
                        : kScalar);
    obs::addCounter(kSkipped, pruned);
    obs::setGauge(kEffectiveness,
                  static_cast<std::int64_t>(pruned * 100 / used));
  }
  return result;
}

core::MetricResult CompiledScenario::analyzeMetric(
    const sched::Mapping& mapping) const {
  ScenarioWorkspace workspace;
  return analyzeMetric(mapping, workspace);
}

sched::MappingObjective robustnessObjective(const CompiledScenario& compiled) {
  auto workspace = std::make_shared<ScenarioWorkspace>();
  return [&compiled, workspace](const sched::Mapping& mapping) {
    return -compiled.analyzeMetric(mapping, *workspace).metric;
  };
}

std::vector<core::RobustnessReport> CompiledScenario::analyzeMappings(
    std::span<const sched::Mapping> mappings, std::size_t threads) const {
  std::vector<core::RobustnessReport> out(mappings.size());
  const std::size_t n = mappings.size();
  if (n == 0) {
    return out;
  }
  const obs::Span span("hiperd.analyzeMappings");
  std::size_t workers = threads == 0 ? defaultThreadCount() : threads;
  workers = std::min(workers, n);
  if (workers <= 1) {
    ScenarioWorkspace workspace;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = analyze(mappings[i], workspace);
    }
    return out;
  }
  // One contiguous block per worker with a dedicated workspace; output
  // slots are disjoint, so results are independent of the worker count.
  std::vector<ScenarioWorkspace> workspaces(workers);
  parallelFor(
      0, workers,
      [&](std::size_t b) {
        const std::size_t lo = n * b / workers;
        const std::size_t hi = n * (b + 1) / workers;
        for (std::size_t i = lo; i < hi; ++i) {
          out[i] = analyze(mappings[i], workspaces[b]);
        }
      },
      workers);
  return out;
}

CompiledScenario HiperdScenario::compile(core::AnalyzerOptions options) const {
  return CompiledScenario(*this, std::move(options));
}

}  // namespace robust::hiperd
