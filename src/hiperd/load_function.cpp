#include "robust/hiperd/load_function.hpp"

#include "robust/util/error.hpp"
#include "robust/util/table.hpp"

namespace robust::hiperd {

LoadFunction LoadFunction::zero(std::size_t sensors) {
  return linear(num::Vec(sensors, 0.0));
}

LoadFunction LoadFunction::linear(num::Vec coeffs) {
  ROBUST_REQUIRE(!coeffs.empty(), "LoadFunction::linear: empty coefficients");
  LoadFunction f;
  f.linear_ = true;
  f.coeffs_ = std::move(coeffs);
  return f;
}

LoadFunction LoadFunction::general(num::ScalarField fn,
                                   num::GradientField gradient) {
  ROBUST_REQUIRE(static_cast<bool>(fn), "LoadFunction::general: null f");
  LoadFunction f;
  f.fn_ = std::move(fn);
  f.gradient_ = std::move(gradient);
  return f;
}

double LoadFunction::evaluate(std::span<const double> lambda) const {
  if (linear_) {
    return num::dot(coeffs_, lambda);
  }
  return fn_(lambda);
}

bool LoadFunction::isZero() const {
  if (!linear_) {
    return false;
  }
  for (double c : coeffs_) {
    if (c != 0.0) {
      return false;
    }
  }
  return true;
}

const num::Vec& LoadFunction::coeffs() const {
  ROBUST_REQUIRE(linear_, "LoadFunction: not linear");
  return coeffs_;
}

core::ImpactFunction LoadFunction::impact(double factor) const {
  ROBUST_REQUIRE(factor > 0.0, "LoadFunction::impact: factor must be > 0");
  if (linear_) {
    return core::ImpactFunction::affine(num::scale(coeffs_, factor), 0.0);
  }
  const num::ScalarField fn = fn_;
  num::GradientField grad;
  if (gradient_) {
    const num::GradientField inner = gradient_;
    grad = [inner, factor](std::span<const double> x) {
      return num::scale(inner(x), factor);
    };
  }
  return core::ImpactFunction::callable(
      [fn, factor](std::span<const double> x) { return factor * fn(x); },
      std::move(grad));
}

std::string LoadFunction::describe(int precision) const {
  if (!linear_) {
    return "<general>";
  }
  std::string out;
  for (std::size_t z = 0; z < coeffs_.size(); ++z) {
    if (coeffs_[z] == 0.0) {
      continue;
    }
    if (!out.empty()) {
      out += " + ";
    }
    out += formatDouble(coeffs_[z], precision) + "*l" + std::to_string(z + 1);
  }
  return out.empty() ? "0" : out;
}

double multitaskFactor(std::size_t appsOnMachine) {
  return appsOnMachine >= 2 ? 1.3 * static_cast<double>(appsOnMachine) : 1.0;
}

}  // namespace robust::hiperd
