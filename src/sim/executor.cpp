#include "robust/sim/executor.hpp"

#include <algorithm>

#include "robust/util/error.hpp"

namespace robust::sim {

ExecutionResult execute(const sched::Mapping& mapping,
                        const ExecutionInput& input) {
  const std::size_t apps = mapping.apps();
  const std::size_t machines = mapping.machines();
  ROBUST_REQUIRE(input.actualTimes.size() == apps,
                 "execute: actualTimes size must equal the application count");
  ROBUST_REQUIRE(
      input.releaseTimes.empty() || input.releaseTimes.size() == apps,
      "execute: releaseTimes size must equal the application count");
  ROBUST_REQUIRE(
      input.machineReady.empty() || input.machineReady.size() == machines,
      "execute: machineReady size must equal the machine count");
  for (double t : input.actualTimes) {
    ROBUST_REQUIRE(t >= 0.0, "execute: negative actual execution time");
  }

  ExecutionResult result;
  result.tasks.resize(apps);
  // finishTimes doubles as the per-machine clock: it always holds the time
  // the machine becomes free, which IS its finishing time so far.
  if (input.machineReady.empty()) {
    result.finishTimes.assign(machines, 0.0);
  } else {
    result.finishTimes = input.machineReady;
  }

  // Applications are dispatched in index order, which on each machine is
  // exactly "the order in which the applications are assigned".
  for (std::size_t i = 0; i < apps; ++i) {
    const std::size_t j = mapping.machineOf(i);
    const double release =
        input.releaseTimes.empty() ? 0.0 : input.releaseTimes[i];
    const double start = std::max(result.finishTimes[j], release);
    const double finish = start + input.actualTimes[i];
    result.finishTimes[j] = finish;
    result.tasks[i] = TaskTrace{i, j, start, finish};
  }
  result.makespan =
      *std::max_element(result.finishTimes.begin(), result.finishTimes.end());
  return result;
}

}  // namespace robust::sim
