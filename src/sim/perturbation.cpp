#include "robust/sim/perturbation.hpp"

#include <algorithm>
#include <cmath>

#include "robust/numeric/vector_ops.hpp"
#include "robust/random/distributions.hpp"
#include "robust/util/error.hpp"

namespace robust::sim {

std::string toString(ErrorModel model) {
  switch (model) {
    case ErrorModel::GaussianRelative:
      return "gaussian-relative";
    case ErrorModel::GammaMultiplicative:
      return "gamma-multiplicative";
    case ErrorModel::UniformRelative:
      return "uniform-relative";
  }
  return "?";
}

std::vector<double> PerturbationModel::sample(
    std::span<const double> estimates, Pcg32& rng) const {
  ROBUST_REQUIRE(magnitude >= 0.0,
                 "PerturbationModel: magnitude must be non-negative");
  std::vector<double> actual(estimates.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    double factor = 1.0;
    switch (model) {
      case ErrorModel::GaussianRelative:
        factor = 1.0 + magnitude * rnd::standardNormal(rng);
        break;
      case ErrorModel::GammaMultiplicative:
        factor = magnitude > 0.0 ? rnd::gammaMeanCv(rng, 1.0, magnitude)
                                 : 1.0;
        break;
      case ErrorModel::UniformRelative:
        factor = rng.uniform(1.0 - magnitude, 1.0 + magnitude);
        break;
    }
    actual[i] = std::max(0.0, estimates[i] * factor);
  }
  return actual;
}

std::vector<double> worstCasePerturbation(
    const sched::IndependentTaskSystem& system, double radius) {
  ROBUST_REQUIRE(radius >= 0.0,
                 "worstCasePerturbation: radius must be non-negative");
  const auto analysis = system.analyze();
  const auto& mapping = system.mapping();
  const auto counts = mapping.countPerMachine();
  const std::size_t jStar = analysis.bindingMachine;
  ROBUST_REQUIRE(counts[jStar] > 0,
                 "worstCasePerturbation: binding machine is empty");

  // Unit direction toward the binding machine's boundary: equal errors on
  // its applications (observation 2), zero elsewhere (observation 1).
  const double perApp =
      radius / std::sqrt(static_cast<double>(counts[jStar]));
  std::vector<double> actual = system.estimatedTimes();
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (mapping.machineOf(i) == jStar) {
      actual[i] += perApp;
    }
  }
  return actual;
}

}  // namespace robust::sim
