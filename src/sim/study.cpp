#include "robust/sim/study.hpp"

#include "robust/numeric/vector_ops.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"
#include "robust/util/error.hpp"
#include "robust/util/stats.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::sim {

std::vector<StudyPoint> runMakespanStudy(
    const sched::IndependentTaskSystem& system, const StudyOptions& options) {
  ROBUST_REQUIRE(options.trials > 0, "runMakespanStudy: trials must be > 0");
  ROBUST_REQUIRE(!options.magnitudes.empty(),
                 "runMakespanStudy: no magnitudes requested");

  const obs::Span span("sim.runMakespanStudy");
  const auto estimates = system.estimatedTimes();
  const auto analysis = system.analyze();
  // rho through the compiled engine's metric-only lane (no per-feature
  // boundary points or report strings are needed here; the lane is within
  // 1e-12 relative of evaluate().metric and deterministic across runs);
  // M_orig stays with the closed-form analysis.
  const double rho = system.compile().evaluateMetric().metric;
  const double bound = system.tau() * analysis.predictedMakespan;
  const auto trials = static_cast<std::size_t>(options.trials);

  std::vector<StudyPoint> points;
  points.reserve(options.magnitudes.size());
  for (std::size_t mi = 0; mi < options.magnitudes.size(); ++mi) {
    const PerturbationModel model{options.model, options.magnitudes[mi]};

    // Each trial owns a makeStream substream and disjoint output slots, so
    // the trial loop parallelizes with bit-identical results for any worker
    // count; the aggregation below is a serial reduction in trial order.
    std::vector<double> ratios(trials);
    std::vector<double> errorNorms(trials);
    std::vector<unsigned char> violated(trials);
    parallelFor(
        0, trials,
        [&](std::size_t t) {
          Pcg32 rng = makeStream(options.seed, mi * trials + t);
          ExecutionInput input;
          input.actualTimes = model.sample(estimates, rng);
          const ExecutionResult run = execute(system.mapping(), input);
          errorNorms[t] = num::distance2(input.actualTimes, estimates);
          violated[t] = run.makespan > bound;
          ratios[t] = run.makespan / analysis.predictedMakespan;
        },
        options.threads);

    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kPoints = obs::counterId("sim.study_points");
      static const obs::MetricId kTrials = obs::counterId("sim.study_trials");
      obs::addCounter(kPoints);
      obs::addCounter(kTrials, trials);
    }
    StudyPoint point;
    point.magnitude = options.magnitudes[mi];
    double errorNormSum = 0.0;
    int violations = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      errorNormSum += errorNorms[t];
      violations += violated[t];
      if (errorNorms[t] <= rho) {
        ++point.coveredTrials;
        point.coveredViolations += violated[t];  // guarantee: must stay 0
      }
    }
    point.meanErrorNorm =
        rho > 0.0 ? errorNormSum / static_cast<double>(options.trials) / rho
                  : 0.0;
    point.violationRate =
        static_cast<double>(violations) / static_cast<double>(options.trials);
    point.meanMakespanRatio = summarize(ratios).mean;
    point.p95MakespanRatio = quantile(ratios, 0.95);
    points.push_back(point);
  }
  return points;
}

}  // namespace robust::sim
