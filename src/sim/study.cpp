#include "robust/sim/study.hpp"

#include "robust/numeric/vector_ops.hpp"
#include "robust/util/error.hpp"
#include "robust/util/stats.hpp"

namespace robust::sim {

std::vector<StudyPoint> runMakespanStudy(
    const sched::IndependentTaskSystem& system, const StudyOptions& options) {
  ROBUST_REQUIRE(options.trials > 0, "runMakespanStudy: trials must be > 0");
  ROBUST_REQUIRE(!options.magnitudes.empty(),
                 "runMakespanStudy: no magnitudes requested");

  const auto estimates = system.estimatedTimes();
  const auto analysis = system.analyze();
  const double bound = system.tau() * analysis.predictedMakespan;

  std::vector<StudyPoint> points;
  points.reserve(options.magnitudes.size());
  for (std::size_t mi = 0; mi < options.magnitudes.size(); ++mi) {
    PerturbationModel model{options.model, options.magnitudes[mi]};
    Pcg32 rng = makeStream(options.seed, mi);

    StudyPoint point;
    point.magnitude = options.magnitudes[mi];
    std::vector<double> ratios;
    ratios.reserve(static_cast<std::size_t>(options.trials));
    double errorNormSum = 0.0;
    int violations = 0;
    for (int t = 0; t < options.trials; ++t) {
      ExecutionInput input;
      input.actualTimes = model.sample(estimates, rng);
      const ExecutionResult run = execute(system.mapping(), input);

      const double errorNorm =
          num::distance2(input.actualTimes, estimates);
      errorNormSum += errorNorm;
      const bool violated = run.makespan > bound;
      violations += violated;
      if (errorNorm <= analysis.robustness) {
        ++point.coveredTrials;
        point.coveredViolations += violated;  // guarantee: must stay 0
      }
      ratios.push_back(run.makespan / analysis.predictedMakespan);
    }
    point.meanErrorNorm =
        analysis.robustness > 0.0
            ? errorNormSum / static_cast<double>(options.trials) /
                  analysis.robustness
            : 0.0;
    point.violationRate =
        static_cast<double>(violations) / static_cast<double>(options.trials);
    point.meanMakespanRatio = summarize(ratios).mean;
    point.p95MakespanRatio = quantile(ratios, 0.95);
    points.push_back(point);
  }
  return points;
}

}  // namespace robust::sim
