#include "robust/random/distributions.hpp"

#include <cmath>

#include "robust/util/error.hpp"

namespace robust::rnd {

double standardNormal(Pcg32& rng) {
  const double u1 = rng.nextDoubleOpen();
  const double u2 = rng.nextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(6.283185307179586476925286766559 * u2);
}

void standardNormalPair(Pcg32& rng, double& z0, double& z1) {
  const double u1 = rng.nextDoubleOpen();
  const double u2 = rng.nextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 6.283185307179586476925286766559 * u2;
  z0 = r * std::cos(theta);
  z1 = r * std::sin(theta);
}

double gamma(Pcg32& rng, double shape, double scale) {
  ROBUST_REQUIRE(shape > 0.0, "gamma: shape must be positive");
  ROBUST_REQUIRE(scale > 0.0, "gamma: scale must be positive");

  if (shape < 1.0) {
    // Boost: if X ~ Gamma(shape + 1) and U ~ U(0,1), then
    // X * U^(1/shape) ~ Gamma(shape).
    const double u = rng.nextDoubleOpen();
    return gamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }

  // Marsaglia & Tsang (2000): squeeze method, ~1.03 normals per draw.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = standardNormal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.nextDoubleOpen();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) {
      return d * v * scale;
    }
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double gammaMeanCv(Pcg32& rng, double mean, double cv) {
  ROBUST_REQUIRE(mean > 0.0, "gammaMeanCv: mean must be positive");
  ROBUST_REQUIRE(cv >= 0.0, "gammaMeanCv: cv must be non-negative");
  if (cv == 0.0) {
    return mean;
  }
  const double shape = 1.0 / (cv * cv);
  const double scale = mean * cv * cv;
  return gamma(rng, shape, scale);
}

double exponential(Pcg32& rng, double rate) {
  ROBUST_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  return -std::log(rng.nextDoubleOpen()) / rate;
}

int uniformInt(Pcg32& rng, int lo, int hi) {
  ROBUST_REQUIRE(lo <= hi, "uniformInt: lo must not exceed hi");
  const auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  return lo + static_cast<int>(rng.nextBounded(span));
}

}  // namespace robust::rnd
