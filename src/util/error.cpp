#include "robust/util/error.hpp"

#include <sstream>

namespace robust::detail {

void throwInvalidArgument(const char* file, int line,
                          const std::string& message) {
  std::ostringstream oss;
  oss << message << " (" << file << ":" << line << ")";
  throw InvalidArgumentError(oss.str());
}

}  // namespace robust::detail
