#include "robust/util/diagnostics.hpp"

#include <cstdio>
#include <utility>

namespace robust::util {

std::string Diagnostic::format() const {
  std::string out = source;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
    if (column > 0) {
      out += ':';
      out += std::to_string(column);
    }
  }
  out += ": ";
  out += message;
  return out;
}

ParseError::ParseError(Diagnostic diagnostic)
    : InvalidArgumentError(diagnostic.format()),
      diagnostic_(std::move(diagnostic)) {}

void Diagnostics::fail(std::size_t line, std::size_t column,
                       std::string message) const {
  throw ParseError(Diagnostic{source_, line, column, std::move(message)});
}

void Diagnostics::warn(std::size_t line, std::size_t column,
                       std::string message) {
  warnings_.push_back(Diagnostic{source_, line, column, std::move(message)});
}

std::string formatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace robust::util
