#include "robust/util/diagnostics.hpp"

#include <cstdio>
#include <utility>

#include "robust/obs/metrics.hpp"

namespace robust::util {

const char* rejectCategoryName(RejectCategory category) noexcept {
  switch (category) {
    case RejectCategory::Format:
      return "format";
    case RejectCategory::Domain:
      return "domain";
    case RejectCategory::Structure:
      return "structure";
    case RejectCategory::Truncated:
      return "truncated";
    case RejectCategory::Other:
      return "other";
  }
  return "other";
}

std::string Diagnostic::format() const {
  std::string out = source;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
    if (column > 0) {
      out += ':';
      out += std::to_string(column);
    }
  }
  out += ": ";
  out += message;
  return out;
}

ParseError::ParseError(Diagnostic diagnostic)
    : InvalidArgumentError(diagnostic.format()),
      diagnostic_(std::move(diagnostic)) {}

void Diagnostics::fail(RejectCategory category, std::size_t line,
                       std::size_t column, std::string message) const {
  ++counts_.byCategory[static_cast<std::size_t>(category)];
  if (obs::enabled()) [[unlikely]] {
    static const std::array<obs::MetricId, kRejectCategoryCount> kIds = [] {
      std::array<obs::MetricId, kRejectCategoryCount> ids{};
      for (std::size_t c = 0; c < kRejectCategoryCount; ++c) {
        ids[c] = obs::counterId(
            std::string("io.reject.") +
            rejectCategoryName(static_cast<RejectCategory>(c)));
      }
      return ids;
    }();
    obs::addCounter(kIds[static_cast<std::size_t>(category)]);
  }
  throw ParseError(
      Diagnostic{source_, line, column, std::move(message), category});
}

void Diagnostics::warn(std::size_t line, std::size_t column,
                       std::string message) {
  warnings_.push_back(Diagnostic{source_, line, column, std::move(message)});
}

std::string formatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace robust::util
