#include "robust/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "robust/util/error.hpp"

namespace robust {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ROBUST_REQUIRE(!headers_.empty(), "TablePrinter: need at least one column");
}

void TablePrinter::addRow(std::vector<std::string> cells) {
  ROBUST_REQUIRE(cells.size() == headers_.size(),
                 "TablePrinter: row width does not match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emitRow(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emitRow(row);
  }
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::string& cell = cells[c];
    const bool needsQuote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (needsQuote) {
      os_ << '"';
      for (char ch : cell) {
        if (ch == '"') {
          os_ << '"';
        }
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << cell;
    }
    if (c + 1 < cells.size()) {
      os_ << ',';
    }
  }
  os_ << '\n';
}

std::string formatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

}  // namespace robust
