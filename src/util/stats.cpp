#include "robust/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "robust/util/error.hpp"

namespace robust {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) {
    return s;
  }
  double sum = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ROBUST_REQUIRE(xs.size() == ys.size(),
                 "pearson: samples must have equal length");
  const std::size_t n = xs.size();
  if (n < 2) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return sxy / std::sqrt(sxx * syy);
}

LinearFit fitLine(std::span<const double> xs, std::span<const double> ys) {
  ROBUST_REQUIRE(xs.size() == ys.size(),
                 "fitLine: samples must have equal length");
  ROBUST_REQUIRE(xs.size() >= 2, "fitLine: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ssRes = 0.0;
  double ssTot = 0.0;
  const double my = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ssRes += (ys[i] - pred) * (ys[i] - pred);
    ssTot += (ys[i] - my) * (ys[i] - my);
  }
  fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
  return fit;
}

namespace {

/// Enforces the non-finite policy: under Throw the first offending sample
/// fails fast with its index and value; under Skip the finite samples are
/// copied out. NaN must never reach the unguarded code below — it breaks
/// std::sort's strict weak ordering, and casting it to a bin index is
/// undefined behavior.
std::vector<double> guardedCopy(std::span<const double> xs,
                                NonFinitePolicy policy, const char* who) {
  std::vector<double> finite;
  finite.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::isfinite(xs[i])) {
      finite.push_back(xs[i]);
      continue;
    }
    ROBUST_REQUIRE(policy == NonFinitePolicy::Skip,
                   std::string(who) + ": sample " + std::to_string(i) +
                       " is non-finite (" +
                       (std::isnan(xs[i])  ? "nan"
                        : xs[i] > 0.0      ? "inf"
                                           : "-inf") +
                       "); pass NonFinitePolicy::Skip to drop such samples");
  }
  return finite;
}

}  // namespace

Histogram makeHistogram(std::span<const double> xs, std::size_t bins,
                        NonFinitePolicy policy) {
  ROBUST_REQUIRE(bins > 0, "makeHistogram: bins must be positive");
  const std::vector<double> finite = guardedCopy(xs, policy, "makeHistogram");
  Histogram h;
  h.counts.assign(bins, 0);
  if (finite.empty()) {
    return h;
  }
  h.lo = *std::min_element(finite.begin(), finite.end());
  h.hi = *std::max_element(finite.begin(), finite.end());
  const double width = h.hi - h.lo;
  for (double x : finite) {
    std::size_t bin =
        width > 0.0
            ? static_cast<std::size_t>((x - h.lo) / width *
                                       static_cast<double>(bins))
            : 0;
    bin = std::min(bin, bins - 1);
    ++h.counts[bin];
  }
  return h;
}

double quantile(std::span<const double> xs, double q, NonFinitePolicy policy) {
  ROBUST_REQUIRE(!xs.empty(), "quantile: empty sample");
  ROBUST_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must lie in [0,1]");
  std::vector<double> sorted = guardedCopy(xs, policy, "quantile");
  ROBUST_REQUIRE(!sorted.empty(),
                 "quantile: no finite samples remain after skipping");
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto loIdx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(loIdx);
  if (loIdx + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[loIdx] * (1.0 - frac) + sorted[loIdx + 1] * frac;
}

}  // namespace robust
