#include "robust/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "robust/obs/metrics.hpp"
#include "robust/obs/trace.hpp"

namespace robust {

std::size_t parseThreadCount(const char* text) noexcept {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  // strtoul accepts leading whitespace and a sign (and wraps negatives);
  // require a bare digit string so "-3" and " 4" are rejected, not mangled.
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return 0;
    }
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || parsed == 0 || parsed > 1024) {
    return 0;
  }
  return static_cast<std::size_t>(parsed);
}

std::size_t defaultThreadCount() noexcept {
  static const std::size_t cached = [] {
    if (const std::size_t parsed = parseThreadCount(std::getenv("ROBUST_THREADS"))) {
      return parsed;
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }();
  return cached;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = defaultThreadCount();
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cvTask_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kHighWater =
          obs::gaugeId("util.pool_queue_highwater");
      obs::maxGauge(kHighWater,
                    static_cast<std::int64_t>(queue_.size()));
    }
  }
  cvTask_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  cvDone_.wait(lock, [this] { return inFlight_ == 0; });
  if (failure_) {
    std::exception_ptr first = std::exchange(failure_, nullptr);
    lock.unlock();
    std::rethrow_exception(first);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cvTask_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must neither terminate the process nor skip the
    // inFlight_ bookkeeping (which would deadlock wait()); the first
    // escape is captured for wait() to rethrow.
    std::exception_ptr caught;
    const auto run = [&task, &caught] {
      try {
        task();
      } catch (...) {
        caught = std::current_exception();
      }
    };
    if (obs::enabled()) [[unlikely]] {
      static const obs::MetricId kTasks = obs::counterId("util.pool_tasks");
      static const obs::MetricId kLatency =
          obs::histogramId("util.pool_task_ns");
      const std::int64_t started = obs::detail::nowNanos();
      run();
      obs::addCounter(kTasks);
      obs::recordLatency(kLatency, obs::detail::nowNanos() - started);
    } else {
      run();
    }
    {
      std::lock_guard lock(mutex_);
      if (caught && !failure_) {
        failure_ = std::move(caught);
      }
      if (--inFlight_ == 0) {
        cvDone_.notify_all();
      }
    }
  }
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t threads) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  std::size_t workers = threads != 0 ? threads : defaultThreadCount();
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }

  ThreadPool pool(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) {
        body(i);
      }
    });
  }
  pool.wait();
}

}  // namespace robust
