#include "robust/util/mmap_file.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "robust/obs/metrics.hpp"
#include "robust/util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ROBUST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ROBUST_HAVE_MMAP 0
#include <fstream>
#endif

namespace robust::util {

namespace {

std::atomic<bool> gForceFallback{false};

bool fallbackForced() noexcept {
  static const bool env = [] {
    const char* v = std::getenv("ROBUST_NO_MMAP");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return env || gForceFallback.load(std::memory_order_relaxed);
}

void tallyBytes(bool mapped, std::uint64_t bytes) {
  if (obs::enabled()) [[unlikely]] {
    static const obs::MetricId kMapped = obs::counterId("io.mmap.bytes_mapped");
    static const obs::MetricId kRead = obs::counterId("io.mmap.bytes_read");
    obs::addCounter(mapped ? kMapped : kRead, bytes);
  }
}

}  // namespace

void MmapFile::setForceFallback(bool on) noexcept {
  gForceFallback.store(on, std::memory_order_relaxed);
}

MmapFile::View& MmapFile::View::operator=(View&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = other.map_;
    mapLength_ = other.mapLength_;
    data_ = other.data_;
    size_ = other.size_;
    buffer_ = static_cast<std::vector<double>&&>(other.buffer_);
    other.map_ = nullptr;
    other.mapLength_ = 0;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MmapFile::View::reset() noexcept {
#if ROBUST_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(map_, mapLength_);
  }
#endif
  map_ = nullptr;
  mapLength_ = 0;
  data_ = nullptr;
  size_ = 0;
}

#if ROBUST_HAVE_MMAP

MmapFile::MmapFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    throw std::runtime_error("mmap_file: cannot open '" + path + "'");
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("mmap_file: cannot stat '" + path + "'");
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
}

void MmapFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MmapFile::view(std::uint64_t offset, std::size_t length,
                    View& out) const {
  ROBUST_REQUIRE(fd_ >= 0, "mmap_file: view() on a closed file");
  ROBUST_REQUIRE(offset <= size_ && length <= size_ - offset,
                 "mmap_file: view range leaves the file");
  out.reset();
  if (length == 0) {
    return;
  }
  if (!fallbackForced()) {
    // Window-map only the requested range, rounded out to page bounds:
    // the address-space cost stays O(window) however large the file is.
    static const auto pageSize =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t mapStart = offset - offset % pageSize;
    const std::size_t mapLength =
        static_cast<std::size_t>(offset - mapStart) + length;
    void* base = ::mmap(nullptr, mapLength, PROT_READ, MAP_PRIVATE, fd_,
                        static_cast<off_t>(mapStart));
    if (base != MAP_FAILED) {
      out.map_ = base;
      out.mapLength_ = mapLength;
      out.data_ =
          static_cast<const std::byte*>(base) + (offset - mapStart);
      out.size_ = length;
      tallyBytes(/*mapped=*/true, length);
      return;
    }
    // mmap refused (address-space cap, exotic filesystem): fall through
    // to the positional-read fallback rather than failing the scan.
  }
  out.buffer_.resize((length + sizeof(double) - 1) / sizeof(double));
  auto* dst = reinterpret_cast<std::byte*>(out.buffer_.data());
  std::size_t done = 0;
  while (done < length) {
    const ::ssize_t got =
        ::pread(fd_, dst + done, length - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      throw std::runtime_error("mmap_file: read failed on '" + path_ + "'");
    }
    if (got == 0) {
      throw std::runtime_error("mmap_file: '" + path_ +
                               "' shrank while being read");
    }
    done += static_cast<std::size_t>(got);
  }
  out.data_ = dst;
  out.size_ = length;
  tallyBytes(/*mapped=*/false, length);
}

#else  // !ROBUST_HAVE_MMAP

MmapFile::MmapFile(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("mmap_file: cannot open '" + path + "'");
  }
  size_ = static_cast<std::uint64_t>(in.tellg());
  fd_ = 0;  // marks the file as open; each view() reopens by path
}

void MmapFile::close() noexcept { fd_ = -1; }

void MmapFile::view(std::uint64_t offset, std::size_t length,
                    View& out) const {
  ROBUST_REQUIRE(fd_ >= 0, "mmap_file: view() on a closed file");
  ROBUST_REQUIRE(offset <= size_ && length <= size_ - offset,
                 "mmap_file: view range leaves the file");
  out.reset();
  if (length == 0) {
    return;
  }
  // No mmap on this platform: a per-call stream keeps view() thread-safe
  // (no shared file offset) at the cost of an open per window.
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("mmap_file: cannot reopen '" + path_ + "'");
  }
  out.buffer_.resize((length + sizeof(double) - 1) / sizeof(double));
  auto* dst = reinterpret_cast<char*>(out.buffer_.data());
  in.seekg(static_cast<std::streamoff>(offset));
  if (!in.read(dst, static_cast<std::streamsize>(length))) {
    throw std::runtime_error("mmap_file: read failed on '" + path_ + "'");
  }
  out.data_ = reinterpret_cast<const std::byte*>(dst);
  out.size_ = length;
  tallyBytes(/*mapped=*/false, length);
}

#endif  // ROBUST_HAVE_MMAP

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace robust::util
