#include "robust/util/args.hpp"

#include <cstdlib>

#include "robust/util/error.hpp"

namespace robust {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    ROBUST_REQUIRE(token.rfind("--", 0) == 0,
                   "ArgParser: expected --option, got '" + token + "'");
    std::string key = token.substr(2);
    ROBUST_REQUIRE(!key.empty(), "ArgParser: empty option name");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";  // bare flag
    }
  }
}

std::string ArgParser::getString(const std::string& key,
                                 const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double ArgParser::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ROBUST_REQUIRE(end != it->second.c_str() && *end == '\0',
                 "ArgParser: option --" + key + " is not a number");
  return v;
}

std::int64_t ArgParser::getInt(const std::string& key,
                               std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  ROBUST_REQUIRE(end != it->second.c_str() && *end == '\0',
                 "ArgParser: option --" + key + " is not an integer");
  return v;
}

bool ArgParser::has(const std::string& key) const {
  return values_.contains(key);
}

}  // namespace robust
