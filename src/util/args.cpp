#include "robust/util/args.hpp"

#include <cstdlib>

#include "robust/util/error.hpp"

namespace robust {

namespace {

/// True when the whole token parses as a number ("-5", "1e-3", "42").
bool isNumberToken(const std::string& token) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  (void)std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    ROBUST_REQUIRE(token.rfind("--", 0) == 0,
                   "ArgParser: expected --option, got '" + token + "'");
    std::string key = token.substr(2);
    ROBUST_REQUIRE(!key.empty(), "ArgParser: empty option name");
    // "--5" is almost always a mistyped negative value; a loud error beats
    // silently registering a flag named "5".
    ROBUST_REQUIRE(!isNumberToken(key),
                   "ArgParser: '" + token +
                       "' looks like a numeric value, not an option; "
                       "negative values follow their option, e.g. "
                       "'--offset -5'");
    // The next token is this option's value unless it is itself an option.
    // A single leading '-' does NOT make it an option: negative numbers
    // ("-5", "-1e-3") are deliberately accepted as values.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "";  // bare flag
    }
  }
}

std::string ArgParser::getString(const std::string& key,
                                 const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double ArgParser::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  ROBUST_REQUIRE(!it->second.empty(),
                 "ArgParser: option --" + key +
                     " expects a numeric value but was given as a bare flag");
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ROBUST_REQUIRE(end != it->second.c_str() && *end == '\0',
                 "ArgParser: option --" + key + " value '" + it->second +
                     "' is not a number");
  return v;
}

std::int64_t ArgParser::getInt(const std::string& key,
                               std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  ROBUST_REQUIRE(!it->second.empty(),
                 "ArgParser: option --" + key +
                     " expects an integer value but was given as a bare flag");
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  ROBUST_REQUIRE(end != it->second.c_str() && *end == '\0',
                 "ArgParser: option --" + key + " value '" + it->second +
                     "' is not an integer");
  return v;
}

bool ArgParser::has(const std::string& key) const {
  return values_.contains(key);
}

}  // namespace robust
