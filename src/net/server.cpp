#include "robust/net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define ROBUST_NET_HAS_EPOLL 1
#else
#define ROBUST_NET_HAS_EPOLL 0
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "robust/obs/flight.hpp"
#include "robust/obs/metrics.hpp"
#include "robust/obs/report.hpp"
#include "robust/util/error.hpp"
#include "robust/util/thread_pool.hpp"

namespace robust::net {

namespace {

using util::Diagnostics;
using util::ParseError;
using util::RejectCategory;

void obsCount(const char* name, std::uint64_t delta = 1) {
  if (obs::enabled()) [[unlikely]] {
    obs::addCounter(obs::counterId(name), delta);
  }
}

/// Stable lower-case frame-type label for metrics ("net.frames{type=...}").
const char* frameTypeLabel(FrameType type) noexcept {
  switch (type) {
    case FrameType::Hello:
      return "hello";
    case FrameType::Register:
      return "register";
    case FrameType::Analyze:
      return "analyze";
    case FrameType::Bye:
      return "bye";
    case FrameType::Stats:
      return "stats";
    case FrameType::TraceDump:
      return "trace_dump";
    default:
      return "other";
  }
}

/// Flight-recorder event name for one frame arrival (string literals: the
/// recorder stores only the pointer).
const char* frameFlightName(FrameType type) noexcept {
  switch (type) {
    case FrameType::Hello:
      return "robustd.frame.hello";
    case FrameType::Register:
      return "robustd.frame.register";
    case FrameType::Analyze:
      return "robustd.frame.analyze";
    case FrameType::Bye:
      return "robustd.frame.bye";
    case FrameType::Stats:
      return "robustd.frame.stats";
    case FrameType::TraceDump:
      return "robustd.frame.trace_dump";
    default:
      return "robustd.frame.other";
  }
}

/// JSON string escaping for the STATS document (tenant names are
/// printable ASCII by wire contract, but stay safe anyway).
void jsonEscape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Always-on per-tenant latency digest: the exact bucket shape of the obs
/// registry histograms, but owned by the IO thread (no sharding needed —
/// one writer), so STATS carries p50/p95/p99 even with ROBUST_OBS=0.
struct LatencyDigest {
  std::uint64_t count = 0;
  std::uint64_t sumNanos = 0;
  std::array<std::uint64_t, obs::kHistogramBuckets> buckets{};

  void record(std::int64_t nanos) noexcept {
    ++count;
    sumNanos += nanos <= 0 ? 0 : static_cast<std::uint64_t>(nanos);
    ++buckets[obs::latencyBucketIndex(nanos)];
  }

  [[nodiscard]] std::int64_t quantileUpperNanos(double q) const noexcept {
    return obs::latencyQuantileUpperNanos(buckets, count, q);
  }
};

/// Everything the daemon knows about one tenant name, across all of its
/// sessions, live and closed. Owned by the IO thread; folded into the
/// STATS document. Totals accrue exactly once per event (frame accepted,
/// completion drained, reject sent), so a snapshot under concurrent load
/// equals the offline ledger.
struct TenantTotals {
  std::uint64_t sessions = 0;  ///< sessions that completed HELLO as this tenant
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t instances = 0;
  std::uint64_t registers = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::array<std::uint64_t, util::kRejectCategoryCount> rejects{};
  double virtualTime = 0.0;  ///< largest admission virtual time reached
  double chargedCost = 0.0;
  LatencyDigest analyzeLatency;  ///< ANALYZE pool execution time
  LatencyDigest compileLatency;  ///< REGISTER pool execution time
  LatencyDigest queueLatency;    ///< admission-to-pool wait, both kinds
};

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

/// Readiness backend: epoll where available, poll(2) otherwise or when
/// forced (ServerOptions::forcePoll / ROBUST_NET_POLL). Both present the
/// same three-flag event view, so the IO loop is backend-agnostic.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  explicit Poller(bool forcePoll) {
    const char* env = std::getenv("ROBUST_NET_POLL");
    const bool envForce =
        env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    usePoll_ = forcePoll || envForce || ROBUST_NET_HAS_EPOLL == 0;
#if ROBUST_NET_HAS_EPOLL
    if (!usePoll_) {
      epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
      if (epfd_ < 0) {
        usePoll_ = true;  // degraded but functional
      }
    }
#endif
  }

  ~Poller() {
#if ROBUST_NET_HAS_EPOLL
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
#endif
  }

  [[nodiscard]] bool usingPoll() const noexcept { return usePoll_; }

  void add(int fd, bool rd, bool wr) {
    if (usePoll_) {
      interest_[fd] = {rd, wr};
      return;
    }
#if ROBUST_NET_HAS_EPOLL
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.fd = fd;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
#endif
  }

  void mod(int fd, bool rd, bool wr) {
    if (usePoll_) {
      interest_[fd] = {rd, wr};
      return;
    }
#if ROBUST_NET_HAS_EPOLL
    epoll_event ev{};
    ev.events = mask(rd, wr);
    ev.data.fd = fd;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
#endif
  }

  void del(int fd) {
    if (usePoll_) {
      interest_.erase(fd);
      return;
    }
#if ROBUST_NET_HAS_EPOLL
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  void wait(std::vector<Event>& out, int timeoutMs) {
    out.clear();
    if (usePoll_) {
      pollfds_.clear();
      for (const auto& [fd, rw] : interest_) {
        pollfd p{};
        p.fd = fd;
        p.events = static_cast<short>((rw.first ? POLLIN : 0) |
                                      (rw.second ? POLLOUT : 0));
        pollfds_.push_back(p);
      }
      const int n = ::poll(pollfds_.data(),
                           static_cast<nfds_t>(pollfds_.size()), timeoutMs);
      if (n <= 0) {
        return;
      }
      for (const pollfd& p : pollfds_) {
        if (p.revents == 0) {
          continue;
        }
        Event ev;
        ev.fd = p.fd;
        ev.readable = (p.revents & POLLIN) != 0;
        ev.writable = (p.revents & POLLOUT) != 0;
        ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out.push_back(ev);
      }
      return;
    }
#if ROBUST_NET_HAS_EPOLL
    epollEvents_.resize(64);
    const int n = ::epoll_wait(epfd_, epollEvents_.data(),
                               static_cast<int>(epollEvents_.size()),
                               timeoutMs);
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = epollEvents_[i].data.fd;
      ev.readable = (epollEvents_[i].events & EPOLLIN) != 0;
      ev.writable = (epollEvents_[i].events & EPOLLOUT) != 0;
      ev.error = (epollEvents_[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
#endif
  }

 private:
#if ROBUST_NET_HAS_EPOLL
  [[nodiscard]] static std::uint32_t mask(bool rd, bool wr) noexcept {
    return (rd ? EPOLLIN : 0u) | (wr ? EPOLLOUT : 0u);
  }
  int epfd_ = -1;
  std::vector<epoll_event> epollEvents_;
#endif
  bool usePoll_ = false;
  std::map<int, std::pair<bool, bool>> interest_;
  std::vector<pollfd> pollfds_;
};

/// Content-addressed CompiledProblem cache shared by every tenant:
/// FNV-1a key over the canonical spec bytes, full byte compare on hit (a
/// colliding spec is simply compiled uncached), LRU eviction. Sessions pin
/// entries with shared_ptr, so eviction never invalidates a registered
/// key — it only stops future cross-tenant sharing of that spec.
class ProblemCache {
 public:
  explicit ProblemCache(std::size_t capacity) : capacity_(capacity) {}

  struct Outcome {
    std::shared_ptr<const core::CompiledProblem> problem;
    std::uint64_t key = 0;
    bool fromCache = false;
    std::uint64_t evictions = 0;
  };

  /// Returns the cached problem for byte-identical `specBytes`, or
  /// compiles and caches it. Throws whatever compile() throws.
  Outcome lookupOrCompile(std::span<const std::uint8_t> specBytes,
                          const WireLimits& limits) {
    Outcome out;
    out.key = fnv1a(specBytes);
    {
      std::lock_guard lock(mutex_);
      const auto it = index_.find(out.key);
      if (it != index_.end() &&
          std::equal(it->second->bytes.begin(), it->second->bytes.end(),
                     specBytes.begin(), specBytes.end())) {
        entries_.splice(entries_.begin(), entries_, it->second);  // touch MRU
        out.problem = it->second->problem;
        out.fromCache = true;
        return out;
      }
    }
    // Compile outside the lock: registration is rare and compilation may
    // be heavy; two tenants racing on the same new spec both compile and
    // the second insert wins the byte-compare (harmless).
    const Diagnostics diag("robustd:register");
    core::ProblemSpec spec = decodeProblemSpec(specBytes, limits, diag);
    auto compiled = std::make_shared<const core::CompiledProblem>(
        core::CompiledProblem::compile(std::move(spec)));
    std::lock_guard lock(mutex_);
    const auto it = index_.find(out.key);
    if (it == index_.end()) {
      entries_.push_front(Entry{
          out.key,
          std::vector<std::uint8_t>(specBytes.begin(), specBytes.end()),
          compiled});
      index_[out.key] = entries_.begin();
      while (entries_.size() > capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++out.evictions;
      }
    }
    out.problem = std::move(compiled);
    return out;
  }

  /// Entries currently cached (for the STATS snapshot).
  [[nodiscard]] std::size_t entries() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::vector<std::uint8_t> bytes;
    std::shared_ptr<const core::CompiledProblem> problem;
  };
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // MRU first
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

struct Work {
  enum class Kind { Register, Analyze };
  Kind kind = Kind::Analyze;
  std::uint32_t requestId = 0;
  double cost = 1.0;        ///< fairness charge (instances, or bytes/4KiB)
  std::size_t bytes = 0;    ///< backpressure accounting
  std::int64_t enqueueNanos = 0;  ///< admission timestamp (queue-wait digest)
  std::vector<std::uint8_t> specBytes;                      // Register
  std::shared_ptr<const core::CompiledProblem> problem;     // Analyze
  std::vector<double> origins;                              // Analyze
  std::uint32_t count = 0;                                  // Analyze
};

struct Completion {
  std::uint64_t sessionId = 0;
  std::vector<std::uint8_t> frame;  ///< encoded reply, ready to send
  std::size_t releasedBytes = 0;    ///< the work's backpressure charge
  // Session-side effects, applied on the IO thread if the session lives:
  std::shared_ptr<const core::CompiledProblem> install;
  std::uint64_t installKey = 0;
  bool rejected = false;
  RejectCategory rejectCategory = RejectCategory::Other;
  std::uint64_t batches = 0;
  std::uint64_t instances = 0;
  std::uint64_t registers = 0;
  std::uint64_t cacheHit = 0;
  std::uint64_t cacheMiss = 0;
  std::uint64_t cacheEvictions = 0;
  std::int64_t queueNanos = 0;  ///< admission-to-pool wait
  std::int64_t execNanos = 0;   ///< pool execution time
};

struct Session {
  std::uint64_t id = 0;
  int fd = -1;
  bool helloDone = false;
  bool closing = false;        ///< no further reads; flush, then close
  bool sawFatal = false;       ///< framing lost; pending work discarded
  std::optional<std::uint32_t> byeRequestId;
  std::string tenant;
  std::uint32_t weight = 1;
  std::uint64_t declaredDemand = 1;
  double virtualTime = 0.0;
  double chargedCost = 0.0;

  std::vector<std::uint8_t> in;
  std::size_t inPos = 0;
  std::deque<std::vector<std::uint8_t>> out;
  std::size_t outPos = 0;    ///< offset into out.front()
  std::size_t outBytes = 0;  ///< total unsent reply bytes
  std::deque<Work> pending;
  std::size_t inflight = 0;  ///< 0 or 1: per-session FIFO replies
  std::size_t backlogBytes = 0;  ///< pending + inflight + out bytes
  bool paused = false;
  bool wantRead = true;
  bool wantWrite = false;

  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const core::CompiledProblem>>
      problems;

  // Run-report accounting.
  std::uint64_t frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t instancesDone = 0;
  std::uint64_t registersDone = 0;
  std::array<std::uint64_t, util::kRejectCategoryCount> rejects{};
  bool disconnected = false;  ///< peer vanished uncleanly
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        cache(options.cacheCapacity),
        pool(options.workers) {}

  ServerOptions options;
  ProblemCache cache;
  ThreadPool pool;
  std::unique_ptr<Poller> poller;  // created in start()

  int listenFd = -1;
  int wakeRead = -1;
  int wakeWrite = -1;
  std::uint16_t boundPort = 0;
  std::thread ioThread;
  std::atomic<bool> stopping{false};
  bool started = false;

  std::uint64_t nextSessionId = 1;
  std::unordered_map<int, std::unique_ptr<Session>> sessions;  // by fd
  std::unordered_map<std::uint64_t, int> fdOfSession;
  double vtFloor = 0.0;        ///< system virtual time for new arrivals
  std::size_t poolBusy = 0;    ///< requests currently on the pool
  /// Per-tenant totals across live AND closed sessions (std::map: the
  /// STATS document iterates it in sorted, deterministic order). IO thread
  /// only.
  std::map<std::string, TenantTotals> tenants;
  std::size_t backlogHighWater = 0;  ///< IO-thread shadow of the stat
  std::uint64_t flightDumps = 0;     ///< on-fatal dumps written so far

  mutable std::mutex mutex;    ///< completions + stats
  std::vector<Completion> completions;
  ServerStats stats;

  // ------------------------------------------------------------- helpers

  void wake() {
    const char byte = 1;
    ssize_t ignored = ::write(wakeWrite, &byte, 1);
    (void)ignored;
  }

  void syncInterest(Session& s) {
    const bool rd = s.wantRead && !s.closing;
    poller->mod(s.fd, rd, s.wantWrite);
  }

  /// Backpressure high-water tracking: called on every backlog increase.
  void noteBacklog(const Session& s) {
    if (s.backlogBytes > backlogHighWater) {
      backlogHighWater = s.backlogBytes;
      std::lock_guard lock(mutex);
      stats.backlogHighWaterBytes = backlogHighWater;
    }
  }

  void appendReply(Session& s, std::vector<std::uint8_t> frame) {
    s.outBytes += frame.size();
    s.backlogBytes += frame.size();
    s.out.push_back(std::move(frame));
    noteBacklog(s);
    if (!s.wantWrite) {
      s.wantWrite = true;
      syncInterest(s);
    }
  }

  void recordReject(Session& s, RejectCategory category) {
    const auto idx = static_cast<std::size_t>(category);
    s.rejects[idx]++;
    if (s.helloDone) {
      tenants[s.tenant].rejects[idx]++;
    }
    {
      std::lock_guard lock(mutex);
      stats.rejects[idx]++;
    }
    if (obs::enabled()) [[unlikely]] {
      obs::addCounter(obs::counterId(std::string("net.reject.") +
                                     util::rejectCategoryName(category)));
    }
  }

  void sendReject(Session& s, std::uint32_t requestId,
                  RejectCategory category, bool fatal, std::string message) {
    RejectInfo info;
    info.category = category;
    info.fatal = fatal;
    info.message = std::move(message);
    std::vector<std::uint8_t> payload;
    encodeReject(info, payload);
    appendReply(s, buildFrame(FrameType::Reject, requestId, payload));
    recordReject(s, category);
    if (fatal) {
      // Framing can no longer be trusted: stop reading, drop queued work
      // (its replies could interleave with a corrupt stream), flush the
      // reject, close. Other sessions are untouched.
      s.sawFatal = true;
      s.closing = true;
      discardPending(s);
      syncInterest(s);
      dumpFlightOnFatal();
    }
  }

  /// The operator's post-mortem: on a fatal reject, persist what every
  /// thread was doing in the moments before framing was lost. Telemetry
  /// must never take the daemon down, so failures are swallowed.
  void dumpFlightOnFatal() {
    if (options.flightDir.empty()) {
      return;
    }
    try {
      std::filesystem::create_directories(options.flightDir);
      ++flightDumps;
      obs::writeFlightTrace(options.flightDir + "/robustd_flight_fatal_" +
                            std::to_string(flightDumps) + ".json");
    } catch (const std::exception&) {
    }
  }

  void discardPending(Session& s) {
    for (const Work& w : s.pending) {
      s.backlogBytes -= std::min(s.backlogBytes, w.bytes);
    }
    s.pending.clear();
  }

  void updatePause(Session& s) {
    if (!s.paused && s.backlogBytes > options.maxInflightBytes) {
      s.paused = true;
      s.wantRead = false;
      syncInterest(s);
      {
        std::lock_guard lock(mutex);
        stats.backpressureStalls++;
      }
      obsCount("net.backpressure_stalls");
    } else if (s.paused && s.backlogBytes <= options.maxInflightBytes / 2) {
      s.paused = false;
      s.wantRead = true;
      syncInterest(s);
    }
  }

  // --------------------------------------------------------- lifecycle

  void openListenSocket() {
    if (!options.unixPath.empty()) {
      sockaddr_un addr{};
      if (options.unixPath.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("robustd: unix socket path too long: " +
                                 options.unixPath);
      }
      listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (listenFd < 0) {
        throw std::runtime_error("robustd: socket() failed");
      }
      ::unlink(options.unixPath.c_str());
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, options.unixPath.c_str(),
                  options.unixPath.size() + 1);
      if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        ::close(listenFd);
        listenFd = -1;
        throw std::runtime_error("robustd: cannot bind unix socket '" +
                                 options.unixPath + "': " +
                                 std::strerror(errno));
      }
    } else {
      listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listenFd < 0) {
        throw std::runtime_error("robustd: socket() failed");
      }
      const int one = 1;
      (void)::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(options.tcpPort);
      if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        ::close(listenFd);
        listenFd = -1;
        throw std::runtime_error(
            "robustd: cannot bind 127.0.0.1:" +
            std::to_string(options.tcpPort) + ": " + std::strerror(errno));
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      (void)::getsockname(listenFd, reinterpret_cast<sockaddr*>(&bound),
                          &len);
      boundPort = ntohs(bound.sin_port);
    }
    if (::listen(listenFd, 128) != 0) {
      ::close(listenFd);
      listenFd = -1;
      throw std::runtime_error("robustd: listen() failed");
    }
    setNonBlocking(listenFd);
  }

  void acceptAll() {
    for (;;) {
      const int fd = ::accept(listenFd, nullptr, nullptr);
      if (fd < 0) {
        return;  // EAGAIN or transient error: nothing more to accept
      }
      setNonBlocking(fd);
      auto session = std::make_unique<Session>();
      session->id = nextSessionId++;
      session->fd = fd;
      session->virtualTime = vtFloor;
      fdOfSession[session->id] = fd;
      poller->add(fd, true, false);
      sessions[fd] = std::move(session);
      {
        std::lock_guard lock(mutex);
        stats.sessionsOpened++;
        stats.sessionsActive++;
      }
      obsCount("net.sessions_opened");
    }
  }

  void writeRunReportFor(const Session& s) {
    if (options.reportDir.empty()) {
      return;
    }
    try {
      std::filesystem::create_directories(options.reportDir);
      obs::RunReport report;
      report.tool = "robustd";
      // report_check requires the metrics section even when obs is off
      // (it is empty then), so always emit it.
      report.includeMetrics = true;
      report.info.emplace_back("session", std::to_string(s.id));
      report.info.emplace_back("tenant", s.tenant);
      report.info.emplace_back("declared_demand",
                               std::to_string(s.declaredDemand));
      report.info.emplace_back("close",
                               s.disconnected ? "disconnect" : "clean");
      report.benchmarks.push_back(
          obs::BenchResult{"frames", static_cast<double>(s.frames), "count"});
      report.benchmarks.push_back(obs::BenchResult{
          "batches", static_cast<double>(s.batches), "count"});
      report.benchmarks.push_back(obs::BenchResult{
          "instances", static_cast<double>(s.instancesDone), "count"});
      report.benchmarks.push_back(obs::BenchResult{
          "registers", static_cast<double>(s.registersDone), "count"});
      report.benchmarks.push_back(obs::BenchResult{
          "charged_cost", s.chargedCost, "instances_per_weight"});
      for (std::size_t c = 0; c < util::kRejectCategoryCount; ++c) {
        report.benchmarks.push_back(obs::BenchResult{
            std::string("rejects_") +
                util::rejectCategoryName(static_cast<RejectCategory>(c)),
            static_cast<double>(s.rejects[c]), "count"});
      }
      obs::writeRunReport(options.reportDir + "/robustd_session_" +
                              std::to_string(s.id) + ".json",
                          report);
    } catch (const std::exception&) {
      // Telemetry must never take a session teardown down with it.
    }
  }

  /// Final teardown of one session: report, unregister, close, reclaim.
  /// Pool work already dispatched for it completes into a dropped
  /// Completion (looked up by id, not pointer), so this is safe even with
  /// inflight != 0 on an unclean disconnect.
  void closeSession(Session& s, bool disconnected) {
    s.disconnected = s.disconnected || disconnected;
    writeRunReportFor(s);
    poller->del(s.fd);
    ::close(s.fd);
    fdOfSession.erase(s.id);
    const int fd = s.fd;
    {
      std::lock_guard lock(mutex);
      stats.sessionsClosed++;
      stats.sessionsActive--;
      if (disconnected) {
        stats.disconnects++;
      }
    }
    obsCount("net.sessions_closed");
    sessions.erase(fd);  // destroys s
  }

  void abortSession(Session& s) {
    discardPending(s);
    closeSession(s, /*disconnected=*/true);
  }

  /// Clean-close progress: once a closing session has drained its queue,
  /// emit the deferred BYE_OK (so it never overtakes queued results), and
  /// once the last reply byte is flushed, tear down.
  void maybeFinish(Session& s) {
    if (!s.closing) {
      return;
    }
    if (s.pending.empty() && s.inflight == 0 && s.byeRequestId) {
      std::vector<std::uint8_t> empty;
      appendReply(s, buildFrame(FrameType::ByeOk, *s.byeRequestId, empty));
      s.byeRequestId.reset();
    }
    if (s.pending.empty() && s.inflight == 0 && s.outBytes == 0 &&
        !s.byeRequestId) {
      closeSession(s, /*disconnected=*/false);
    }
  }

  // -------------------------------------------------------- fair queue

  /// Starts as much admitted work as the pool can hold, always picking the
  /// runnable session with the lowest virtual time (weighted fair
  /// queuing); ties break on session id for determinism.
  void dispatch() {
    while (poolBusy < pool.size()) {
      Session* chosen = nullptr;
      for (auto& [fd, sp] : sessions) {
        Session& s = *sp;
        if (s.pending.empty() || s.inflight != 0) {
          continue;
        }
        if (chosen == nullptr || s.virtualTime < chosen->virtualTime ||
            (s.virtualTime == chosen->virtualTime && s.id < chosen->id)) {
          chosen = &s;
        }
      }
      if (chosen == nullptr) {
        return;
      }
      vtFloor = std::max(vtFloor, chosen->virtualTime);
      Work work = std::move(chosen->pending.front());
      chosen->pending.pop_front();
      const double charge =
          work.cost / static_cast<double>(std::max<std::uint32_t>(
                          1, chosen->weight));
      chosen->virtualTime += charge;
      chosen->chargedCost += charge;
      TenantTotals& totals = tenants[chosen->tenant];
      totals.virtualTime = std::max(totals.virtualTime, chosen->virtualTime);
      totals.chargedCost += charge;
      chosen->inflight = 1;
      ++poolBusy;
      submitWork(chosen->id, std::move(work));
    }
  }

  void submitWork(std::uint64_t sessionId, Work&& work) {
    // std::function demands copyable callables; the work rides a
    // shared_ptr.
    auto shared = std::make_shared<Work>(std::move(work));
    pool.submit([this, sessionId, shared] {
      Completion done = runWork(*shared);
      done.sessionId = sessionId;
      done.releasedBytes = shared->bytes;
      {
        std::lock_guard lock(mutex);
        completions.push_back(std::move(done));
      }
      wake();
    });
  }

  /// Executes one admitted request on a pool thread. Never throws: every
  /// failure becomes a categorized non-fatal reject reply.
  Completion runWork(const Work& work) {
    const std::int64_t startNanos = obs::detail::nowNanos();
    Completion done = runWorkInner(work);
    const std::int64_t endNanos = obs::detail::nowNanos();
    done.queueNanos = startNanos - work.enqueueNanos;
    done.execNanos = endNanos - startNanos;
    obs::recordFlight(work.kind == Work::Kind::Register
                          ? "robustd.work.register"
                          : "robustd.work.analyze",
                      work.requestId, startNanos, endNanos - startNanos);
    return done;
  }

  Completion runWorkInner(const Work& work) {
    Completion done;
    try {
      if (work.kind == Work::Kind::Register) {
        ProblemCache::Outcome outcome =
            cache.lookupOrCompile(work.specBytes, options.limits);
        std::vector<std::uint8_t> payload;
        encodeRegisterOk(outcome.key, outcome.fromCache, payload);
        done.frame = buildFrame(FrameType::RegisterOk, work.requestId,
                                payload);
        done.install = std::move(outcome.problem);
        done.installKey = outcome.key;
        done.registers = 1;
        done.cacheHit = outcome.fromCache ? 1 : 0;
        done.cacheMiss = outcome.fromCache ? 0 : 1;
        done.cacheEvictions = outcome.evictions;
        return done;
      }
      const core::CompiledProblem& problem = *work.problem;
      const std::size_t dim = problem.dimension();
      const Diagnostics diag("robustd:analyze");
      for (std::size_t i = 0; i < work.origins.size(); ++i) {
        if (!std::isfinite(work.origins[i])) {
          // 1-based instance/component provenance, like the .rbi loader.
          diag.fail(RejectCategory::Domain, i / dim + 1, i % dim + 1,
                    "origin component " +
                        util::formatValue(work.origins[i]) +
                        " is not finite");
        }
      }
      std::vector<core::AnalysisInstance> instances(work.count);
      for (std::uint32_t i = 0; i < work.count; ++i) {
        instances[i].origin =
            std::span<const double>(work.origins.data() + i * dim, dim);
      }
      // threads = 1: requests are the unit of parallelism here (the pool
      // fans out across tenants). analyzeBatchMetric is bit-identical for
      // every thread count, so this changes nothing the client can see.
      const std::vector<core::MetricResult> metrics =
          problem.analyzeBatchMetric(instances, /*threads=*/1);
      std::vector<WireResult> results(work.count);
      const bool constrained = !problem.constraints().empty();
      for (std::uint32_t i = 0; i < work.count; ++i) {
        results[i].rho = metrics[i].metric;
        results[i].bindingFeature =
            static_cast<std::uint32_t>(metrics[i].bindingFeature);
        results[i].floored = metrics[i].floored;
        results[i].infeasibleOrigin =
            constrained && !problem.originFeasible(instances[i].origin);
      }
      std::vector<std::uint8_t> payload;
      encodeResult(results, payload);
      done.frame = buildFrame(FrameType::Result, work.requestId, payload);
      done.batches = 1;
      done.instances = work.count;
      return done;
    } catch (const ParseError& e) {
      done.rejected = true;
      done.rejectCategory = e.diagnostic().category;
      RejectInfo info{e.diagnostic().category, false, e.diagnostic().format()};
      std::vector<std::uint8_t> payload;
      encodeReject(info, payload);
      done.frame = buildFrame(FrameType::Reject, work.requestId, payload);
      return done;
    } catch (const std::exception& e) {
      // Compile-time contract violations (InvalidArgumentError) and
      // anything else the engine throws: the tenant hears a categorized
      // reject; the daemon and every other tenant keep running.
      done.rejected = true;
      done.rejectCategory = RejectCategory::Domain;
      RejectInfo info{RejectCategory::Domain, false, e.what()};
      std::vector<std::uint8_t> payload;
      encodeReject(info, payload);
      done.frame = buildFrame(FrameType::Reject, work.requestId, payload);
      return done;
    }
  }

  void drainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard lock(mutex);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      --poolBusy;
      const auto fdIt = fdOfSession.find(done.sessionId);
      {
        std::lock_guard lock(mutex);
        stats.batches += done.batches;
        stats.instances += done.instances;
        stats.registers += done.registers;
        stats.cacheHits += done.cacheHit;
        stats.cacheMisses += done.cacheMiss;
        stats.cacheEvictions += done.cacheEvictions;
      }
      if (done.batches > 0) {
        obsCount("net.batches", done.batches);
        obsCount("net.instances", done.instances);
      }
      if (fdIt == fdOfSession.end()) {
        continue;  // session vanished mid-flight; the reply has no reader
      }
      Session& s = *sessions.at(fdIt->second);
      s.inflight = 0;
      s.backlogBytes -= std::min(s.backlogBytes, done.releasedBytes);
      s.batches += done.batches;
      s.instancesDone += done.instances;
      s.registersDone += done.registers;
      // Per-tenant ledger: pool work only exists after HELLO, so the
      // tenant name is always set here.
      TenantTotals& totals = tenants[s.tenant];
      totals.batches += done.batches;
      totals.instances += done.instances;
      totals.registers += done.registers;
      totals.cacheHits += done.cacheHit;
      totals.cacheMisses += done.cacheMiss;
      if (done.batches > 0 || done.registers > 0) {
        totals.queueLatency.record(done.queueNanos);
      }
      if (done.batches > 0) {
        totals.analyzeLatency.record(done.execNanos);
      }
      if (done.registers > 0) {
        totals.compileLatency.record(done.execNanos);
      }
      if (obs::enabled()) [[unlikely]] {
        if (done.batches > 0) {
          obs::addCounter(obs::counterId("net.instances", "tenant", s.tenant),
                          done.instances);
          obs::recordLatency(
              obs::histogramId("net.latency.analyze", "tenant", s.tenant),
              done.execNanos);
        }
        if (done.registers > 0) {
          obs::recordLatency(
              obs::histogramId("net.latency.compile", "tenant", s.tenant),
              done.execNanos);
        }
      }
      if (done.rejected) {
        recordReject(s, done.rejectCategory);
      }
      if (done.install) {
        s.problems[done.installKey] = std::move(done.install);
      }
      appendReply(s, std::move(done.frame));
      updatePause(s);
      maybeFinish(s);
    }
    dispatch();
  }

  // ------------------------------------------------------------- stats

  static void appendDigest(std::string& out, const char* key,
                           const LatencyDigest& digest) {
    out += '"';
    out += key;
    out += "\":{\"count\":";
    out += std::to_string(digest.count);
    out += ",\"sum_nanos\":";
    out += std::to_string(digest.sumNanos);
    out += ",\"p50_nanos\":";
    out += std::to_string(digest.quantileUpperNanos(0.50));
    out += ",\"p95_nanos\":";
    out += std::to_string(digest.quantileUpperNanos(0.95));
    out += ",\"p99_nanos\":";
    out += std::to_string(digest.quantileUpperNanos(0.99));
    out += '}';
  }

  static std::string jsonDouble(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  /// The robust.stats document. Runs on the IO thread, which owns the
  /// sessions and the tenant ledger, so the snapshot is internally
  /// consistent: every completed batch is either in the counters or not
  /// yet drained — never half-applied. Key order is fixed and tenants
  /// iterate sorted, so two servers that did the same work produce
  /// structurally identical documents.
  std::string buildStatsJson() {
    ServerStats st;
    {
      std::lock_guard lock(mutex);
      st = stats;
    }
    std::size_t pausedSessions = 0;
    for (const auto& [fd, sp] : sessions) {
      if (sp->paused) {
        ++pausedSessions;
      }
    }
    std::string out;
    out.reserve(1024 + tenants.size() * 640);
    out += "{\"schema\":\"";
    out += kStatsSchemaName;
    out += "\",\"schema_version\":";
    out += std::to_string(kStatsSchemaVersion);
    out += ",\"tool\":\"robustd\"";

    out += ",\"server\":{\"sessions_opened\":";
    out += std::to_string(st.sessionsOpened);
    out += ",\"sessions_closed\":";
    out += std::to_string(st.sessionsClosed);
    out += ",\"sessions_active\":";
    out += std::to_string(st.sessionsActive);
    out += ",\"frames\":";
    out += std::to_string(st.framesHandled);
    out += ",\"batches\":";
    out += std::to_string(st.batches);
    out += ",\"instances\":";
    out += std::to_string(st.instances);
    out += ",\"registers\":";
    out += std::to_string(st.registers);
    out += ",\"disconnects\":";
    out += std::to_string(st.disconnects);
    out += ",\"stats_requests\":";
    out += std::to_string(st.statsRequests);
    out += ",\"trace_dumps\":";
    out += std::to_string(st.traceDumps);
    out += ",\"pool_workers\":";
    out += std::to_string(pool.size());
    out += ",\"pool_busy\":";
    out += std::to_string(poolBusy);
    out += ",\"virtual_time_floor\":";
    out += jsonDouble(vtFloor);
    out += '}';

    out += ",\"cache\":{\"hits\":";
    out += std::to_string(st.cacheHits);
    out += ",\"misses\":";
    out += std::to_string(st.cacheMisses);
    out += ",\"evictions\":";
    out += std::to_string(st.cacheEvictions);
    out += ",\"entries\":";
    out += std::to_string(cache.entries());
    out += ",\"capacity\":";
    out += std::to_string(options.cacheCapacity);
    out += '}';

    out += ",\"backpressure\":{\"stalls\":";
    out += std::to_string(st.backpressureStalls);
    out += ",\"max_inflight_bytes\":";
    out += std::to_string(options.maxInflightBytes);
    out += ",\"backlog_high_water_bytes\":";
    out += std::to_string(st.backlogHighWaterBytes);
    out += ",\"paused_sessions\":";
    out += std::to_string(pausedSessions);
    out += '}';

    out += ",\"rejects\":{";
    for (std::size_t c = 0; c < util::kRejectCategoryCount; ++c) {
      if (c != 0) {
        out += ',';
      }
      out += '"';
      out += util::rejectCategoryName(static_cast<RejectCategory>(c));
      out += "\":";
      out += std::to_string(st.rejects[c]);
    }
    out += ",\"total\":";
    out += std::to_string(st.rejectsTotal());
    out += '}';

    out += ",\"tenants\":{";
    bool firstTenant = true;
    for (const auto& [name, totals] : tenants) {
      if (!firstTenant) {
        out += ',';
      }
      firstTenant = false;
      out += '"';
      jsonEscape(out, name);
      out += "\":{\"sessions\":";
      out += std::to_string(totals.sessions);
      out += ",\"frames\":";
      out += std::to_string(totals.frames);
      out += ",\"batches\":";
      out += std::to_string(totals.batches);
      out += ",\"instances\":";
      out += std::to_string(totals.instances);
      out += ",\"registers\":";
      out += std::to_string(totals.registers);
      out += ",\"cache_hits\":";
      out += std::to_string(totals.cacheHits);
      out += ",\"cache_misses\":";
      out += std::to_string(totals.cacheMisses);
      std::uint64_t rejectsTotal = 0;
      for (std::uint64_t v : totals.rejects) {
        rejectsTotal += v;
      }
      out += ",\"rejects_total\":";
      out += std::to_string(rejectsTotal);
      out += ",\"virtual_time\":";
      out += jsonDouble(totals.virtualTime);
      out += ",\"charged_cost\":";
      out += jsonDouble(totals.chargedCost);
      out += ",\"latency\":{";
      appendDigest(out, "analyze", totals.analyzeLatency);
      out += ',';
      appendDigest(out, "compile", totals.compileLatency);
      out += ',';
      appendDigest(out, "queue", totals.queueLatency);
      out += "}}";
    }
    out += '}';

    out += ",\"flight\":{\"records\":";
    out += std::to_string(obs::flightRecordCount());
    out += ",\"capacity\":";
    out += std::to_string(obs::flightCapacity());
    out += ",\"dumps\":";
    out += std::to_string(flightDumps);
    out += "}}";
    return out;
  }

  // ------------------------------------------------------------ frames

  void handleFrame(Session& s, const FrameHeader& header,
                   std::span<const std::uint8_t> payload) {
    s.frames++;
    if (s.helloDone) {
      tenants[s.tenant].frames++;
    }
    {
      std::lock_guard lock(mutex);
      stats.framesHandled++;
    }
    obsCount("net.frames");
    if (obs::enabled()) [[unlikely]] {
      obs::addCounter(
          obs::counterId("net.frames", "type", frameTypeLabel(header.type)));
    }
    if (obs::flightEnabled()) {
      // Instantaneous arrival marker, requestId-correlated: the dump shows
      // which wire request each queue wait / compile / analyze belongs to.
      obs::recordFlight(frameFlightName(header.type), header.requestId,
                        obs::detail::nowNanos(), 0);
    }
    const Diagnostics diag("robustd:frame");
    switch (header.type) {
      case FrameType::Hello: {
        if (s.helloDone) {
          sendReject(s, header.requestId, RejectCategory::Structure, false,
                     "robustd: HELLO already completed on this connection");
          return;
        }
        try {
          const HelloRequest hello =
              decodeHello(payload, options.limits, diag);
          s.helloDone = true;
          s.tenant = hello.tenant;
          s.declaredDemand = hello.declaredDemand;
          s.weight = hello.declaredDemand;
          s.virtualTime = std::max(s.virtualTime, vtFloor);
          TenantTotals& totals = tenants[s.tenant];
          totals.sessions++;
          totals.frames++;  // the HELLO frame itself, now attributable
          std::vector<std::uint8_t> reply;
          encodeHelloOk(s.id, reply);
          appendReply(s, buildFrame(FrameType::HelloOk, header.requestId,
                                    reply));
        } catch (const ParseError& e) {
          sendReject(s, header.requestId, e.diagnostic().category, false,
                     e.diagnostic().format());
        }
        return;
      }
      case FrameType::Register: {
        if (!requireHello(s, header.requestId)) {
          return;
        }
        Work work;
        work.kind = Work::Kind::Register;
        work.requestId = header.requestId;
        work.specBytes.assign(payload.begin(), payload.end());
        work.bytes = payload.size();
        // Registration is charged by payload size (the only demand signal
        // available before decoding): one 4-KiB page of spec ~ one
        // instance of analysis.
        work.cost = 1.0 + static_cast<double>(payload.size()) / 4096.0;
        admit(s, std::move(work));
        return;
      }
      case FrameType::Analyze: {
        if (!requireHello(s, header.requestId)) {
          return;
        }
        try {
          const AnalyzeHead head =
              decodeAnalyzeHead(payload, options.limits, diag);
          const auto it = s.problems.find(head.key);
          if (it == s.problems.end()) {
            sendReject(s, header.requestId, RejectCategory::Structure, false,
                       "robustd: unknown problem key " +
                           std::to_string(head.key) +
                           " (REGISTER the spec on this connection first)");
            return;
          }
          const std::size_t dim = it->second->dimension();
          const std::size_t expect =
              kAnalyzeHeadBytes +
              static_cast<std::size_t>(head.instanceCount) * dim * 8;
          if (payload.size() != expect) {
            sendReject(s, header.requestId, RejectCategory::Structure, false,
                       "robustd: ANALYZE payload of " +
                           std::to_string(payload.size()) +
                           " bytes does not match " +
                           std::to_string(head.instanceCount) +
                           " instances of dimension " + std::to_string(dim) +
                           " (expected " + std::to_string(expect) + ")");
            return;
          }
          Work work;
          work.kind = Work::Kind::Analyze;
          work.requestId = header.requestId;
          work.problem = it->second;
          work.count = head.instanceCount;
          work.cost = static_cast<double>(head.instanceCount);
          work.bytes = payload.size();
          work.origins.resize(static_cast<std::size_t>(head.instanceCount) *
                              dim);
          std::memcpy(work.origins.data(),
                      payload.data() + kAnalyzeHeadBytes,
                      work.origins.size() * 8);
          admit(s, std::move(work));
        } catch (const ParseError& e) {
          sendReject(s, header.requestId, e.diagnostic().category, false,
                     e.diagnostic().format());
        }
        return;
      }
      case FrameType::Bye: {
        s.closing = true;
        s.byeRequestId = header.requestId;
        syncInterest(s);
        maybeFinish(s);
        return;
      }
      // Admin frames: answered inline on the IO thread — a snapshot is a
      // read of state this thread already owns, so it never waits behind
      // (or occupies) a pool worker, and no HELLO is required (a monitor
      // is not a tenant).
      case FrameType::Stats: {
        try {
          (void)decodeAdminRequest(payload, diag);
        } catch (const ParseError& e) {
          sendReject(s, header.requestId, e.diagnostic().category, false,
                     e.diagnostic().format());
          return;
        }
        {
          std::lock_guard lock(mutex);
          stats.statsRequests++;
        }
        const std::string json = buildStatsJson();
        if (json.size() > options.limits.maxFrameBytes) {
          sendReject(s, header.requestId, RejectCategory::Domain, false,
                     "robustd: stats snapshot of " +
                         std::to_string(json.size()) +
                         " bytes exceeds the frame cap");
          return;
        }
        appendReply(
            s, buildFrame(FrameType::StatsOk, header.requestId,
                          std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(
                                  json.data()),
                              json.size())));
        return;
      }
      case FrameType::TraceDump: {
        try {
          (void)decodeAdminRequest(payload, diag);
        } catch (const ParseError& e) {
          sendReject(s, header.requestId, e.diagnostic().category, false,
                     e.diagnostic().format());
          return;
        }
        std::ostringstream dump;
        obs::writeFlightTrace(dump);
        const std::string text = dump.str();
        if (text.size() > options.limits.maxFrameBytes) {
          // Refuse without draining: the records stay available for an
          // on-fatal file dump, which has no frame cap.
          sendReject(s, header.requestId, RejectCategory::Domain, false,
                     "robustd: flight dump of " + std::to_string(text.size()) +
                         " bytes exceeds the frame cap");
          return;
        }
        obs::clearFlight();  // drain semantics: each record is reported once
        {
          std::lock_guard lock(mutex);
          stats.traceDumps++;
        }
        appendReply(
            s, buildFrame(FrameType::TraceDumpOk, header.requestId,
                          std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(
                                  text.data()),
                              text.size())));
        return;
      }
      default:
        sendReject(s, header.requestId, RejectCategory::Format, false,
                   "robustd: unexpected frame type 0x" +
                       std::to_string(static_cast<unsigned>(header.type)));
        return;
    }
  }

  bool requireHello(Session& s, std::uint32_t requestId) {
    if (s.helloDone) {
      return true;
    }
    sendReject(s, requestId, RejectCategory::Structure, false,
               "robustd: HELLO must precede every other frame");
    return false;
  }

  void admit(Session& s, Work&& work) {
    work.enqueueNanos = obs::detail::nowNanos();
    s.backlogBytes += work.bytes;
    s.pending.push_back(std::move(work));
    noteBacklog(s);
    updatePause(s);
    dispatch();
  }

  void readFrom(Session& s) {
    char chunk[65536];
    for (;;) {
      if (s.paused || s.closing) {
        break;
      }
      const ssize_t n = ::read(s.fd, chunk, sizeof(chunk));
      if (n > 0) {
        s.in.insert(s.in.end(), chunk, chunk + n);
        if (!parseFrames(s)) {
          return;  // session aborted or went fatal
        }
        continue;
      }
      if (n == 0) {
        // Peer closed. A clean client said BYE first; anything still
        // queued or unread marks an unclean disconnect. Either way the
        // session is torn down now and nobody else notices.
        abortSession(s);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      abortSession(s);
      return;
    }
  }

  /// Consumes every complete frame in the input buffer. Returns false when
  /// the session was closed underneath (fatal reject path keeps the
  /// session alive to flush, so it returns true).
  bool parseFrames(Session& s) {
    for (;;) {
      if (s.closing) {
        return true;
      }
      const std::size_t available = s.in.size() - s.inPos;
      if (available < kHeaderBytes) {
        break;
      }
      const Diagnostics diag("robustd:frame");
      FrameHeader header;
      try {
        header = decodeFrameHeader(
            std::span<const std::uint8_t>(s.in.data() + s.inPos,
                                          kHeaderBytes),
            options.limits, diag);
      } catch (const ParseError& e) {
        sendReject(s, 0, e.diagnostic().category, true,
                   e.diagnostic().format());
        return true;
      }
      if (available < kHeaderBytes + header.payloadBytes) {
        break;  // wait for the rest of the payload
      }
      if (!isClientFrameType(static_cast<std::uint8_t>(header.type))) {
        // The stream is still framed; answer per-request and move on.
        s.inPos += kHeaderBytes + header.payloadBytes;
        sendReject(s, header.requestId, RejectCategory::Format, false,
                   "robustd: frame type 0x" +
                       std::to_string(static_cast<unsigned>(header.type)) +
                       " is not a client request");
        continue;
      }
      const std::span<const std::uint8_t> payload(
          s.in.data() + s.inPos + kHeaderBytes, header.payloadBytes);
      s.inPos += kHeaderBytes + header.payloadBytes;
      handleFrame(s, header, payload);
    }
    // Compact the consumed prefix once it dominates the buffer.
    if (s.inPos > 0 && (s.inPos >= s.in.size() || s.inPos > 1u << 16)) {
      s.in.erase(s.in.begin(),
                 s.in.begin() + static_cast<std::ptrdiff_t>(s.inPos));
      s.inPos = 0;
    }
    return true;
  }

  void flushTo(Session& s) {
    while (!s.out.empty()) {
      const std::vector<std::uint8_t>& front = s.out.front();
      const std::size_t left = front.size() - s.outPos;
      const ssize_t n = ::write(s.fd, front.data() + s.outPos, left);
      if (n > 0) {
        s.outPos += static_cast<std::size_t>(n);
        s.outBytes -= static_cast<std::size_t>(n);
        s.backlogBytes -= std::min(s.backlogBytes,
                                   static_cast<std::size_t>(n));
        if (s.outPos == front.size()) {
          s.out.pop_front();
          s.outPos = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      abortSession(s);  // EPIPE / ECONNRESET: peer vanished
      return;
    }
    s.wantWrite = false;
    syncInterest(s);
    updatePause(s);
    maybeFinish(s);
  }

  // ------------------------------------------------------------ IO loop

  void ioLoop() {
    std::vector<Poller::Event> events;
    while (!stopping.load(std::memory_order_relaxed)) {
      poller->wait(events, 200);
      for (const Poller::Event& ev : events) {
        if (ev.fd == wakeRead) {
          char sink[256];
          while (::read(wakeRead, sink, sizeof(sink)) > 0) {
          }
          continue;
        }
        if (ev.fd == listenFd) {
          acceptAll();
          continue;
        }
        const auto it = sessions.find(ev.fd);
        if (it == sessions.end()) {
          continue;  // closed earlier this round
        }
        Session& s = *it->second;
        if (ev.error) {
          abortSession(s);
          continue;
        }
        if (ev.writable) {
          flushTo(s);
        }
        // flushTo may have closed the session; re-find before reading.
        const auto again = sessions.find(ev.fd);
        if (again == sessions.end() || !ev.readable) {
          continue;
        }
        readFrom(*again->second);
      }
      drainCompletions();
    }
    shutdownSessions();
  }

  /// Stop-path teardown on the IO thread: let in-flight work finish (its
  /// replies are dropped), then close every session with a report.
  void shutdownSessions() {
    while (poolBusy > 0) {
      std::vector<Poller::Event> events;
      poller->wait(events, 50);
      drainCompletionsDiscarding();
    }
    while (!sessions.empty()) {
      Session& s = *sessions.begin()->second;
      discardPending(s);
      closeSession(s, /*disconnected=*/false);
    }
  }

  void drainCompletionsDiscarding() {
    std::vector<Completion> batch;
    {
      std::lock_guard lock(mutex);
      batch.swap(completions);
    }
    poolBusy -= std::min(poolBusy, batch.size());
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

void Server::start() {
  ROBUST_REQUIRE(!impl_->started, "robustd: server already started");
  impl_->poller = std::make_unique<Poller>(impl_->options.forcePoll);
  impl_->openListenSocket();
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    ::close(impl_->listenFd);
    impl_->listenFd = -1;
    throw std::runtime_error("robustd: pipe() failed");
  }
  impl_->wakeRead = pipeFds[0];
  impl_->wakeWrite = pipeFds[1];
  setNonBlocking(impl_->wakeRead);
  setNonBlocking(impl_->wakeWrite);
  impl_->poller->add(impl_->listenFd, true, false);
  impl_->poller->add(impl_->wakeRead, true, false);
  impl_->stopping.store(false);
  impl_->started = true;
  impl_->ioThread = std::thread([this] { impl_->ioLoop(); });
}

void Server::stop() {
  if (!impl_->started) {
    return;
  }
  impl_->stopping.store(true);
  impl_->wake();
  if (impl_->ioThread.joinable()) {
    impl_->ioThread.join();
  }
  try {
    impl_->pool.wait();
  } catch (const std::exception&) {
    // Worker exceptions were already answered as rejects; a stray one
    // must not escape shutdown.
  }
  if (impl_->listenFd >= 0) {
    ::close(impl_->listenFd);
    impl_->listenFd = -1;
  }
  if (impl_->wakeRead >= 0) {
    ::close(impl_->wakeRead);
    ::close(impl_->wakeWrite);
    impl_->wakeRead = impl_->wakeWrite = -1;
  }
  if (!impl_->options.unixPath.empty()) {
    ::unlink(impl_->options.unixPath.c_str());
  }
  impl_->started = false;
}

std::uint16_t Server::port() const noexcept { return impl_->boundPort; }

const std::string& Server::unixPath() const noexcept {
  return impl_->options.unixPath;
}

ServerStats Server::stats() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace robust::net
