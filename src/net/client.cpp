#include "robust/net/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace robust::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error("robustd client: " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::~Client() { closeNow(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      nextRequestId_(other.nextRequestId_),
      limits_(other.limits_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    closeNow();
    fd_ = std::exchange(other.fd_, -1);
    nextRequestId_ = other.nextRequestId_;
    limits_ = other.limits_;
  }
  return *this;
}

void Client::connectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("robustd client: unix path too long: " + path);
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throwErrno("socket()");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throwErrno("connect('" + path + "')");
  }
}

void Client::connectTcp(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throwErrno("socket()");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throwErrno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
}

void Client::writeAll(const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd_, data + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    throwErrno("write()");
  }
}

void Client::readAll(std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_, data + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      throw std::runtime_error(
          "robustd client: server closed the connection mid-frame");
    }
    if (errno == EINTR) {
      continue;
    }
    throwErrno("read()");
  }
}

void Client::sendFrame(FrameType type, std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame =
      buildFrame(type, nextRequestId_++, payload);
  writeAll(frame.data(), frame.size());
}

std::pair<FrameHeader, std::vector<std::uint8_t>> Client::readFrame() {
  std::array<std::uint8_t, kHeaderBytes> head;
  readAll(head.data(), head.size());
  const util::Diagnostics diag("robustd:reply");
  const FrameHeader header = decodeFrameHeader(head, limits_, diag);
  std::vector<std::uint8_t> payload(header.payloadBytes);
  readAll(payload.data(), payload.size());
  return {header, std::move(payload)};
}

std::vector<std::uint8_t> Client::await(FrameType expect) {
  auto [header, payload] = readFrame();
  if (header.type == FrameType::Reject) {
    const util::Diagnostics diag("robustd:reply");
    throw RejectedError(decodeReject(payload, diag));
  }
  if (header.type != expect) {
    throw std::runtime_error(
        "robustd client: expected frame type 0x" +
        std::to_string(static_cast<unsigned>(expect)) + ", got 0x" +
        std::to_string(static_cast<unsigned>(header.type)));
  }
  return std::move(payload);
}

std::uint64_t Client::hello(const std::string& tenant,
                            std::uint32_t declaredDemand) {
  std::vector<std::uint8_t> payload;
  encodeHello(declaredDemand, tenant, payload);
  sendFrame(FrameType::Hello, payload);
  const std::vector<std::uint8_t> reply = await(FrameType::HelloOk);
  const util::Diagnostics diag("robustd:reply");
  return decodeHelloOk(reply, diag).sessionId;
}

RegisterReply Client::registerProblem(const core::ProblemSpec& spec) {
  return registerEncoded(encodeProblemSpec(spec));
}

RegisterReply Client::registerEncoded(
    std::span<const std::uint8_t> specBytes) {
  sendFrame(FrameType::Register, specBytes);
  const std::vector<std::uint8_t> reply = await(FrameType::RegisterOk);
  const util::Diagnostics diag("robustd:reply");
  return decodeRegisterOk(reply, diag);
}

std::vector<WireResult> Client::analyze(std::uint64_t key,
                                        std::uint32_t instanceCount,
                                        std::span<const double> origins) {
  std::vector<std::uint8_t> payload;
  encodeAnalyze(key, instanceCount, origins, payload);
  sendFrame(FrameType::Analyze, payload);
  const std::vector<std::uint8_t> reply = await(FrameType::Result);
  const util::Diagnostics diag("robustd:reply");
  return decodeResult(reply, limits_, diag);
}

std::string Client::stats() {
  std::vector<std::uint8_t> payload;
  encodeAdminRequest(kStatsSchemaVersion, payload);
  sendFrame(FrameType::Stats, payload);
  const std::vector<std::uint8_t> reply = await(FrameType::StatsOk);
  return {reinterpret_cast<const char*>(reply.data()), reply.size()};
}

std::string Client::traceDump() {
  std::vector<std::uint8_t> payload;
  encodeAdminRequest(kStatsSchemaVersion, payload);
  sendFrame(FrameType::TraceDump, payload);
  const std::vector<std::uint8_t> reply = await(FrameType::TraceDumpOk);
  return {reinterpret_cast<const char*>(reply.data()), reply.size()};
}

void Client::bye() {
  if (fd_ < 0) {
    return;
  }
  std::vector<std::uint8_t> empty;
  sendFrame(FrameType::Bye, empty);
  (void)await(FrameType::ByeOk);
  closeNow();
}

void Client::sendRaw(std::span<const std::uint8_t> bytes) {
  writeAll(bytes.data(), bytes.size());
}

void Client::closeNow() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace robust::net
