#include "robust/net/wire.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "robust/core/feature.hpp"
#include "robust/core/report.hpp"
#include "robust/util/error.hpp"

namespace robust::net {

namespace {

using util::Diagnostics;
using util::RejectCategory;

// Little-endian primitive writers. memcpy keeps them alignment-safe; the
// build targets are little-endian (the on-disk .rbi format makes the same
// assumption).
void putU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const std::size_t at = out.size();
  out.resize(at + 2);
  std::memcpy(out.data() + at, &v, 2);
}
void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
void putF64(std::vector<std::uint8_t>& out, double v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
void putBytes(std::vector<std::uint8_t>& out, const void* data,
              std::size_t n) {
  if (n == 0) {
    return;
  }
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, data, n);
}

/// Bounds-checked little-endian cursor over one untrusted payload. Every
/// under-run fails through the Diagnostics context with the 1-based byte
/// position of the field that could not be read.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, const Diagnostics& diag)
      : bytes_(bytes), diag_(diag) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      diag_.fail(RejectCategory::Truncated, 0, pos_ + 1,
                 std::string("payload ends inside ") + what + " (need " +
                     std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()) + ")");
    }
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return bytes_[pos_++];
  }
  std::uint16_t u16(const char* what) {
    need(2, what);
    std::uint16_t v;
    std::memcpy(&v, bytes_.data() + pos_, 2);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  double f64(const char* what) {
    need(8, what);
    double v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  /// A finite double; non-finite payloads are Domain rejects so NaN can
  /// never leak past the service boundary (mirrors core::InputPolicy).
  double finiteF64(const char* what) {
    const std::size_t at = pos_;
    const double v = f64(what);
    if (!std::isfinite(v)) {
      diag_.fail(RejectCategory::Domain, 0, at + 1,
                 std::string(what) + " is not finite");
    }
    return v;
  }
  std::string name(std::uint32_t maxBytes, const char* what) {
    const std::size_t lenAt = pos_;
    const std::uint16_t len = u16(what);
    if (len > maxBytes) {
      diag_.fail(RejectCategory::Domain, 0, lenAt + 1,
                 std::string(what) + " length " + std::to_string(len) +
                     " exceeds the cap of " + std::to_string(maxBytes));
    }
    need(len, what);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(out[i]);
      if (c < 0x20 || c == 0x7f) {
        diag_.fail(RejectCategory::Domain, 0, pos_ + i + 1,
                   std::string(what) +
                       " contains a control character (byte 0x" +
                       std::to_string(static_cast<unsigned>(c)) + ")");
      }
    }
    pos_ += len;
    return out;
  }
  void expectEnd(const char* what) const {
    if (remaining() != 0) {
      diag_.fail(RejectCategory::Structure, 0, pos_ + 1,
                 std::to_string(remaining()) +
                     " trailing payload bytes after " + what);
    }
  }

 private:
  std::span<const std::uint8_t> bytes_;
  const Diagnostics& diag_;
  std::size_t pos_ = 0;
};

/// Reads `count` finite doubles into a fresh vector. `count` has already
/// been validated against the caps; the per-element truncation check keeps
/// hostile counts from allocating past the payload size.
num::Vec finiteVec(Reader& reader, std::size_t count, const char* what) {
  reader.need(count * 8, what);  // fail before allocating
  num::Vec out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(reader.finiteF64(what));
  }
  return out;
}

}  // namespace

bool isClientFrameType(std::uint8_t type) noexcept {
  switch (static_cast<FrameType>(type)) {
    case FrameType::Hello:
    case FrameType::Register:
    case FrameType::Analyze:
    case FrameType::Bye:
    case FrameType::Stats:
    case FrameType::TraceDump:
      return true;
    default:
      return false;
  }
}

// ----------------------------------------------------------------- header

void encodeFrameHeader(const FrameHeader& header,
                       std::vector<std::uint8_t>& out) {
  putU32(out, kMagic);
  putU8(out, header.version);
  putU8(out, static_cast<std::uint8_t>(header.type));
  putU16(out, 0);
  putU32(out, header.payloadBytes);
  putU32(out, header.requestId);
}

FrameHeader decodeFrameHeader(std::span<const std::uint8_t> bytes,
                              const WireLimits& limits,
                              const Diagnostics& diag) {
  Reader reader(bytes, diag);
  reader.need(kHeaderBytes, "frame header");
  const std::uint32_t magic = reader.u32("magic");
  if (magic != kMagic) {
    diag.fail(RejectCategory::Format, 0, 1,
              "bad frame magic (not a robustd stream)");
  }
  FrameHeader header;
  header.version = reader.u8("version");
  if (header.version != kProtocolVersion) {
    diag.fail(RejectCategory::Structure, 0, 5,
              "unsupported protocol version " +
                  std::to_string(header.version) + " (speaking " +
                  std::to_string(kProtocolVersion) + ")");
  }
  const std::uint8_t type = reader.u8("frame type");
  header.type = static_cast<FrameType>(type);
  const std::uint16_t reserved = reader.u16("reserved field");
  if (reserved != 0) {
    diag.fail(RejectCategory::Structure, 0, 7,
              "reserved header bytes must be zero");
  }
  header.payloadBytes = reader.u32("payload length");
  if (header.payloadBytes > limits.maxFrameBytes) {
    diag.fail(RejectCategory::Domain, 0, 9,
              "payload of " + std::to_string(header.payloadBytes) +
                  " bytes exceeds the frame cap of " +
                  std::to_string(limits.maxFrameBytes));
  }
  header.requestId = reader.u32("request id");
  return header;
}

// ---------------------------------------------------------------- payloads

void encodeHello(std::uint32_t declaredDemand, const std::string& tenant,
                 std::vector<std::uint8_t>& out) {
  putU32(out, declaredDemand);
  putU16(out, static_cast<std::uint16_t>(tenant.size()));
  putBytes(out, tenant.data(), tenant.size());
}

HelloRequest decodeHello(std::span<const std::uint8_t> payload,
                         const WireLimits& limits, const Diagnostics& diag) {
  Reader reader(payload, diag);
  HelloRequest hello;
  hello.declaredDemand = reader.u32("declared demand");
  if (hello.declaredDemand == 0 ||
      hello.declaredDemand > limits.maxDeclaredDemand) {
    diag.fail(RejectCategory::Domain, 0, 1,
              "declared demand " + std::to_string(hello.declaredDemand) +
                  " outside [1, " + std::to_string(limits.maxDeclaredDemand) +
                  "]");
  }
  hello.tenant = reader.name(limits.maxNameBytes, "tenant name");
  reader.expectEnd("HELLO");
  return hello;
}

void encodeHelloOk(std::uint64_t sessionId, std::vector<std::uint8_t>& out) {
  putU32(out, kProtocolVersion);
  putU64(out, sessionId);
}

HelloReply decodeHelloOk(std::span<const std::uint8_t> payload,
                         const Diagnostics& diag) {
  Reader reader(payload, diag);
  HelloReply reply;
  reply.protocolVersion = reader.u32("protocol version");
  reply.sessionId = reader.u64("session id");
  reader.expectEnd("HELLO_OK");
  return reply;
}

std::vector<std::uint8_t> encodeProblemSpec(const core::ProblemSpec& spec) {
  ROBUST_REQUIRE(spec.subspaces.empty(),
                 "encodeProblemSpec: explicit subspaces do not cross the "
                 "wire (v1 carries the single-subspace form only)");
  const std::size_t dim = spec.parameter.origin.size();
  ROBUST_REQUIRE(dim > 0, "encodeProblemSpec: empty perturbation origin");
  ROBUST_REQUIRE(!spec.features.empty(),
                 "encodeProblemSpec: a spec needs at least one feature");
  std::vector<std::uint8_t> out;
  putU32(out, static_cast<std::uint32_t>(dim));
  putU32(out, static_cast<std::uint32_t>(spec.features.size()));
  putU32(out, static_cast<std::uint32_t>(spec.constraints.size()));
  putU8(out, static_cast<std::uint8_t>(spec.options.norm));
  putU8(out, spec.parameter.discrete ? 1 : 0);
  putU16(out, 0);
  for (double v : spec.parameter.origin) {
    putF64(out, v);
  }
  if (spec.options.norm == core::NormKind::Weighted) {
    ROBUST_REQUIRE(spec.options.normWeights.size() == dim,
                   "encodeProblemSpec: norm weights do not match dimension");
    for (double v : spec.options.normWeights) {
      putF64(out, v);
    }
  }
  for (const core::PerformanceFeature& f : spec.features) {
    ROBUST_REQUIRE(f.impact.isAffine(),
                   "encodeProblemSpec: feature '" + f.name +
                       "' is an opaque callable and cannot cross the wire");
    ROBUST_REQUIRE(f.impact.weights().size() == dim,
                   "encodeProblemSpec: feature '" + f.name +
                       "' weight row does not match dimension");
    ROBUST_REQUIRE(f.bounds.min.has_value() || f.bounds.max.has_value(),
                   "encodeProblemSpec: feature '" + f.name +
                       "' carries no tolerance bound");
    putU16(out, static_cast<std::uint16_t>(f.name.size()));
    putBytes(out, f.name.data(), f.name.size());
    std::uint8_t mask = 0;
    if (f.bounds.min) {
      mask |= 1;
    }
    if (f.bounds.max) {
      mask |= 2;
    }
    putU8(out, mask);
    if (f.bounds.min) {
      putF64(out, *f.bounds.min);
    }
    if (f.bounds.max) {
      putF64(out, *f.bounds.max);
    }
    putF64(out, f.impact.constant());
    for (double v : f.impact.weights()) {
      putF64(out, v);
    }
  }
  for (const core::LinearConstraint& c : spec.constraints) {
    ROBUST_REQUIRE(c.coeffs.size() == dim,
                   "encodeProblemSpec: constraint '" + c.name +
                       "' coefficients do not match dimension");
    putU16(out, static_cast<std::uint16_t>(c.name.size()));
    putBytes(out, c.name.data(), c.name.size());
    putF64(out, c.bound);
    for (double v : c.coeffs) {
      putF64(out, v);
    }
  }
  return out;
}

core::ProblemSpec decodeProblemSpec(std::span<const std::uint8_t> payload,
                                    const WireLimits& limits,
                                    const Diagnostics& diag) {
  Reader reader(payload, diag);
  const std::uint32_t dim = reader.u32("dimension");
  if (dim == 0 || dim > limits.maxDim) {
    diag.fail(RejectCategory::Domain, 0, 1,
              "dimension " + std::to_string(dim) + " outside [1, " +
                  std::to_string(limits.maxDim) + "]");
  }
  const std::uint32_t featureCount = reader.u32("feature count");
  if (featureCount == 0 || featureCount > limits.maxFeatures) {
    diag.fail(RejectCategory::Domain, 0, 5,
              "feature count " + std::to_string(featureCount) +
                  " outside [1, " + std::to_string(limits.maxFeatures) + "]");
  }
  const std::uint32_t constraintCount = reader.u32("constraint count");
  if (constraintCount > limits.maxConstraints) {
    diag.fail(RejectCategory::Domain, 0, 9,
              "constraint count " + std::to_string(constraintCount) +
                  " exceeds the cap of " +
                  std::to_string(limits.maxConstraints));
  }
  // Cheapest possible shape check before anything is allocated: each
  // feature needs at least a weight row, each constraint a coefficient
  // row. Division keeps the product from overflowing (instance_file.cpp
  // uses the same trick against hostile headers).
  const std::size_t perRow = static_cast<std::size_t>(dim) * 8;
  if (payload.size() / perRow <
      static_cast<std::size_t>(featureCount) + constraintCount) {
    diag.fail(RejectCategory::Structure, 0, 1,
              "payload of " + std::to_string(payload.size()) +
                  " bytes cannot hold " + std::to_string(featureCount) +
                  " features and " + std::to_string(constraintCount) +
                  " constraints of dimension " + std::to_string(dim));
  }
  const std::uint8_t norm = reader.u8("norm kind");
  if (norm > 3) {
    diag.fail(RejectCategory::Domain, 0, reader.pos(),
              "norm kind " + std::to_string(norm) + " is not a NormKind");
  }
  const std::uint8_t discrete = reader.u8("discrete flag");
  if (discrete > 1) {
    diag.fail(RejectCategory::Domain, 0, reader.pos(),
              "discrete flag must be 0 or 1");
  }
  if (reader.u16("reserved field") != 0) {
    diag.fail(RejectCategory::Structure, 0, reader.pos() - 1,
              "reserved spec bytes must be zero");
  }

  core::ProblemSpec spec;
  spec.parameter.name = "pi (wire)";
  spec.parameter.discrete = discrete == 1;
  spec.parameter.origin = finiteVec(reader, dim, "origin component");
  spec.options.norm = static_cast<core::NormKind>(norm);
  if (spec.options.norm == core::NormKind::Weighted) {
    const std::size_t at = reader.pos();
    spec.options.normWeights = finiteVec(reader, dim, "norm weight");
    for (std::size_t i = 0; i < dim; ++i) {
      if (spec.options.normWeights[i] <= 0.0) {
        diag.fail(RejectCategory::Domain, 0, at + i * 8 + 1,
                  "norm weight " + util::formatValue(spec.options.normWeights[i]) +
                      " must be positive");
      }
    }
  }
  spec.features.reserve(featureCount);
  for (std::uint32_t f = 0; f < featureCount; ++f) {
    std::string name = reader.name(limits.maxNameBytes, "feature name");
    const std::size_t maskAt = reader.pos();
    const std::uint8_t mask = reader.u8("bounds mask");
    if (mask == 0 || mask > 3) {
      diag.fail(RejectCategory::Structure, 0, maskAt + 1,
                "bounds mask of feature " + std::to_string(f + 1) +
                    " must name at least one bound (1, 2, or 3)");
    }
    core::ToleranceBounds bounds;
    if ((mask & 1) != 0) {
      bounds.min = reader.finiteF64("tolerance bound min");
    }
    if ((mask & 2) != 0) {
      bounds.max = reader.finiteF64("tolerance bound max");
    }
    if (bounds.min && bounds.max && *bounds.min > *bounds.max) {
      diag.fail(RejectCategory::Domain, 0, maskAt + 1,
                "tolerance bounds of feature " + std::to_string(f + 1) +
                    " are inverted (min > max)");
    }
    const double constant = reader.finiteF64("feature constant");
    num::Vec weights = finiteVec(reader, dim, "feature weight");
    spec.features.push_back(core::PerformanceFeature{
        std::move(name),
        core::ImpactFunction::affine(std::move(weights), constant), bounds});
  }
  spec.constraints.reserve(constraintCount);
  for (std::uint32_t c = 0; c < constraintCount; ++c) {
    core::LinearConstraint constraint;
    constraint.name = reader.name(limits.maxNameBytes, "constraint name");
    constraint.bound = reader.finiteF64("constraint bound");
    constraint.coeffs = finiteVec(reader, dim, "constraint coefficient");
    spec.constraints.push_back(std::move(constraint));
  }
  reader.expectEnd("REGISTER");
  return spec;
}

void encodeRegisterOk(std::uint64_t key, bool fromCache,
                      std::vector<std::uint8_t>& out) {
  putU64(out, key);
  putU8(out, fromCache ? 1 : 0);
}

RegisterReply decodeRegisterOk(std::span<const std::uint8_t> payload,
                               const Diagnostics& diag) {
  Reader reader(payload, diag);
  RegisterReply reply;
  reply.key = reader.u64("problem key");
  reply.fromCache = reader.u8("cache flag") != 0;
  reader.expectEnd("REGISTER_OK");
  return reply;
}

void encodeAnalyze(std::uint64_t key, std::uint32_t instanceCount,
                   std::span<const double> origins,
                   std::vector<std::uint8_t>& out) {
  putU64(out, key);
  putU32(out, instanceCount);
  putU32(out, 0);
  putBytes(out, origins.data(), origins.size() * 8);
}

AnalyzeHead decodeAnalyzeHead(std::span<const std::uint8_t> payload,
                              const WireLimits& limits,
                              const Diagnostics& diag) {
  Reader reader(payload, diag);
  AnalyzeHead head;
  head.key = reader.u64("problem key");
  head.instanceCount = reader.u32("instance count");
  if (head.instanceCount == 0 || head.instanceCount > limits.maxInstances) {
    diag.fail(RejectCategory::Domain, 0, 9,
              "instance count " + std::to_string(head.instanceCount) +
                  " outside [1, " + std::to_string(limits.maxInstances) + "]");
  }
  if (reader.u32("reserved field") != 0) {
    diag.fail(RejectCategory::Structure, 0, 13,
              "reserved ANALYZE bytes must be zero");
  }
  return head;
}

void encodeResult(std::span<const WireResult> results,
                  std::vector<std::uint8_t>& out) {
  putU32(out, static_cast<std::uint32_t>(results.size()));
  putU32(out, 0);
  for (const WireResult& r : results) {
    putF64(out, r.rho);
    putU32(out, r.bindingFeature);
    std::uint8_t flags = 0;
    if (r.floored) {
      flags |= 1;
    }
    if (r.infeasibleOrigin) {
      flags |= 2;
    }
    putU8(out, flags);
  }
}

std::vector<WireResult> decodeResult(std::span<const std::uint8_t> payload,
                                     const WireLimits& limits,
                                     const Diagnostics& diag) {
  Reader reader(payload, diag);
  const std::uint32_t count = reader.u32("result count");
  if (count > limits.maxInstances) {
    diag.fail(RejectCategory::Domain, 0, 1,
              "result count " + std::to_string(count) + " exceeds the cap");
  }
  if (reader.u32("reserved field") != 0) {
    diag.fail(RejectCategory::Structure, 0, 5,
              "reserved RESULT bytes must be zero");
  }
  reader.need(static_cast<std::size_t>(count) * 13, "result entries");
  std::vector<WireResult> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireResult r;
    r.rho = reader.f64("rho");  // +inf is a legitimate metric
    r.bindingFeature = reader.u32("binding feature");
    const std::uint8_t flags = reader.u8("result flags");
    if (flags > 3) {
      diag.fail(RejectCategory::Structure, 0, reader.pos(),
                "unknown result flag bits");
    }
    r.floored = (flags & 1) != 0;
    r.infeasibleOrigin = (flags & 2) != 0;
    out.push_back(r);
  }
  reader.expectEnd("RESULT");
  return out;
}

void encodeAdminRequest(std::uint32_t schemaVersion,
                        std::vector<std::uint8_t>& out) {
  putU32(out, schemaVersion);
  putU32(out, 0);
}

std::uint32_t decodeAdminRequest(std::span<const std::uint8_t> payload,
                                 const Diagnostics& diag) {
  Reader reader(payload, diag);
  const std::uint32_t version = reader.u32("stats schema version");
  if (version != kStatsSchemaVersion) {
    diag.fail(RejectCategory::Structure, 0, 1,
              "unsupported stats schema version " + std::to_string(version) +
                  " (speaking " + std::to_string(kStatsSchemaVersion) + ")");
  }
  if (reader.u32("reserved field") != 0) {
    diag.fail(RejectCategory::Structure, 0, 5,
              "reserved admin-request bytes must be zero");
  }
  reader.expectEnd("admin request");
  return version;
}

void encodeReject(const RejectInfo& reject, std::vector<std::uint8_t>& out) {
  putU8(out, static_cast<std::uint8_t>(reject.category));
  putU8(out, reject.fatal ? 1 : 0);
  putU16(out, 0);
  putU32(out, static_cast<std::uint32_t>(reject.message.size()));
  putBytes(out, reject.message.data(), reject.message.size());
}

RejectInfo decodeReject(std::span<const std::uint8_t> payload,
                        const Diagnostics& diag) {
  Reader reader(payload, diag);
  RejectInfo reject;
  const std::uint8_t category = reader.u8("reject category");
  if (category >= util::kRejectCategoryCount) {
    diag.fail(RejectCategory::Structure, 0, 1, "unknown reject category");
  }
  reject.category = static_cast<util::RejectCategory>(category);
  reject.fatal = reader.u8("fatal flag") != 0;
  (void)reader.u16("reserved field");
  const std::uint32_t len = reader.u32("message length");
  reader.need(len, "reject message");
  reject.message.assign(
      reinterpret_cast<const char*>(payload.data() + reader.pos()), len);
  return reject;
}

// ------------------------------------------------------------------ hashing

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::uint8_t> buildFrame(FrameType type, std::uint32_t requestId,
                                     std::span<const std::uint8_t> payload) {
  FrameHeader header;
  header.type = type;
  header.requestId = requestId;
  header.payloadBytes = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  encodeFrameHeader(header, out);
  putBytes(out, payload.data(), payload.size());
  return out;
}

}  // namespace robust::net
